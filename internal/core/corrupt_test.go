package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"testing"

	"vizndp/internal/compress"
	"vizndp/internal/grid"
	"vizndp/internal/rpc"
	"vizndp/internal/telemetry"
	"vizndp/internal/vtkio"
)

// writeChecksummedFile writes ds as a checksum-bearing .vnd under dir
// and returns its absolute path and store-relative path.
func writeChecksummedFile(t *testing.T, dir string, ds *grid.Dataset) (abs, rel string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dir, "run"), 0o755); err != nil {
		t.Fatal(err)
	}
	abs = filepath.Join(dir, "run", "ts0.vnd")
	if err := vtkio.WriteFile(abs, ds, vtkio.WriteOptions{Codec: compress.None, Checksum: true}); err != nil {
		t.Fatal(err)
	}
	return abs, "run/ts0.vnd"
}

// flipByteInArray flips one bit inside the named array's stored extent
// of the .vnd file at path.
func flipByteInArray(t *testing.T, path, array string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := vtkio.OpenReader(newSliceReaderAt(data))
	if err != nil {
		t.Fatal(err)
	}
	info := r.Header().Array(array)
	if info == nil {
		t.Fatalf("no array %q", array)
	}
	data[info.Offset+info.CompressedSize()/2] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

type sliceReaderAt []byte

func newSliceReaderAt(b []byte) sliceReaderAt { return sliceReaderAt(b) }

func (s sliceReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(s)) {
		return 0, errors.New("out of range")
	}
	n := copy(p, s[off:])
	if n < len(p) {
		return n, errors.New("short")
	}
	return n, nil
}

// startServer serves dir over loopback with the given options.
func startServer(t *testing.T, dir string, opts ...ServerOption) (*Server, string) {
	t.Helper()
	srv := NewServer(os.DirFS(dir), opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

func TestFetchCorruptBrickReturnsErrCorrupt(t *testing.T) {
	g, f := sphereField(16)
	ds := grid.NewDataset(g)
	ds.MustAddField(f)
	dir := t.TempDir()
	abs, rel := writeChecksummedFile(t, dir, ds)
	flipByteInArray(t, abs, f.Name)

	_, addr := startServer(t, dir)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	corrupt0 := mFetchCorrupt.Value()
	_, _, err = c.FetchFiltered(rel, f.Name, []float64{5}, EncIndexValue)
	if !errors.Is(err, rpc.ErrCorrupt) {
		t.Fatalf("fetch of corrupt file err = %v, want ErrCorrupt", err)
	}
	if _, _, err := c.FetchRaw(rel, f.Name); !errors.Is(err, rpc.ErrCorrupt) {
		t.Fatalf("raw fetch of corrupt file err = %v, want ErrCorrupt", err)
	}
	if mFetchCorrupt.Value() == corrupt0 {
		t.Error("ndp.fetch.corrupt did not advance")
	}
}

func TestCorruptLoadNeverCached(t *testing.T) {
	g, f := sphereField(16)
	ds := grid.NewDataset(g)
	ds.MustAddField(f)
	dir := t.TempDir()
	abs, rel := writeChecksummedFile(t, dir, ds)
	clean, err := os.ReadFile(abs)
	if err != nil {
		t.Fatal(err)
	}
	flipByteInArray(t, abs, f.Name)

	srv, addr := startServer(t, dir, WithCacheBytes(16<<20))
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3; i++ {
		if _, _, err := c.FetchFiltered(rel, f.Name, []float64{5}, EncIndexValue); !errors.Is(err, rpc.ErrCorrupt) {
			t.Fatalf("fetch %d err = %v, want ErrCorrupt", i, err)
		}
	}
	if n := srv.Cache().Len(); n != 0 {
		t.Fatalf("cache holds %d entries after corrupt loads, want 0", n)
	}
	// Restoring the clean bytes heals the path immediately: nothing
	// stale or poisoned survives in the cache.
	if err := os.WriteFile(abs, clean, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchFiltered(rel, f.Name, []float64{5}, EncIndexValue); err != nil {
		t.Fatalf("fetch after restore: %v", err)
	}
	if n := srv.Cache().Len(); n != 1 {
		t.Fatalf("cache holds %d entries after clean load, want 1", n)
	}
}

func TestInvalidatePathEvictsResidentEntries(t *testing.T) {
	g, f := sphereField(16)
	ds := grid.NewDataset(g)
	ds.MustAddField(f)
	dir := t.TempDir()
	abs, rel := writeChecksummedFile(t, dir, ds)

	srv, addr := startServer(t, dir, WithCacheBytes(16<<20))
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Warm the cache from the clean file, then corrupt the file on disk:
	// the next MISS (forced by the changed version) detects corruption
	// and must also evict the stale resident entry for the path.
	if _, _, err := c.FetchFiltered(rel, f.Name, []float64{5}, EncIndexValue); err != nil {
		t.Fatal(err)
	}
	if n := srv.Cache().Len(); n != 1 {
		t.Fatalf("cache holds %d entries, want 1", n)
	}
	flipByteInArray(t, abs, f.Name)
	if _, _, err := c.FetchFiltered(rel, f.Name, []float64{5}, EncIndexValue); !errors.Is(err, rpc.ErrCorrupt) {
		t.Fatalf("fetch after corruption err = %v, want ErrCorrupt", err)
	}
	if n := srv.Cache().Len(); n != 0 {
		t.Fatalf("cache holds %d entries after corruption detected, want 0", n)
	}
}

// scrubDataset writes a single-step bricked layout (bricks beside the
// manifest) with page checksums and manifest whole-object CRCs, and
// returns the manifest path and the brick object paths.
func scrubDataset(t *testing.T, dir string) (manifestPath string, brickPaths []string) {
	t.Helper()
	g, f := sphereField(12)
	ds := grid.NewDataset(g)
	ds.MustAddField(f)
	spec := grid.BrickSpec{NX: 2, NY: 2, NZ: 1, Ghost: 1}
	sub := filepath.Join(dir, "integrity")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	bricks, err := spec.Bricks(g.Dims)
	if err != nil {
		t.Fatal(err)
	}
	man, err := vtkio.BuildManifest(g, spec, ds.FieldNames(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bricks {
		bds, err := grid.ExtractBrick(ds, b)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(sub, vtkio.BrickKey(b.ID))
		if err := vtkio.WriteFile(p, bds, vtkio.WriteOptions{Codec: compress.LZ4, Checksum: true}); err != nil {
			t.Fatal(err)
		}
		obj, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		man.Entries[i].Checksum = vtkio.Checksum(obj)
		brickPaths = append(brickPaths, p)
	}
	data, err := vtkio.EncodeManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	manifestPath = filepath.Join(sub, "manifest.json")
	if err := os.WriteFile(manifestPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return manifestPath, brickPaths
}

func TestScrubberQuarantinesCorruptBricks(t *testing.T) {
	dir := t.TempDir()
	_, brickPaths := scrubDataset(t, dir)

	sc := NewScrubber(os.DirFS(dir), "integrity/manifest.json")
	rep, err := sc.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 0 || rep.Scanned != len(brickPaths) {
		t.Fatalf("clean pass = %+v, want %d scanned and 0 corrupt", rep, len(brickPaths))
	}

	// Plant damage: flip a byte inside two bricks' array extents.
	for _, p := range brickPaths[:2] {
		flipByteInArray(t, p, "d")
	}
	scanned0 := mScrubScanned.Value()
	rep, err = sc.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 2 || rep.Quarantined != 2 {
		t.Fatalf("corrupt pass = %+v, want 2 corrupt, 2 quarantined", rep)
	}
	if mScrubScanned.Value()-scanned0 != int64(rep.Scanned) {
		t.Error("core.scrub.scanned does not reconcile with the report")
	}
	for _, p := range brickPaths[:2] {
		rel, _ := filepath.Rel(dir, p)
		if sc.Quarantined(filepath.ToSlash(rel)) == "" {
			t.Errorf("%s not quarantined", rel)
		}
	}
	if sc.Quarantined("integrity/"+filepath.Base(brickPaths[2])) != "" {
		t.Error("intact brick was quarantined")
	}

	// A third pass skips the quarantined objects instead of re-reading
	// known-bad bytes.
	rep, err = sc.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 0 || rep.Quarantined != 0 || rep.Skipped < 2 {
		t.Fatalf("post-quarantine pass = %+v, want 0 corrupt and >= 2 skipped", rep)
	}

	st := sc.Status()
	if st.Passes != 3 || len(st.Quarantined) != 2 {
		t.Fatalf("status = %+v, want 3 passes and 2 quarantined", st)
	}
}

func TestScrubberRecordsFlightEvents(t *testing.T) {
	dir := t.TempDir()
	scrubDataset(t, dir)
	sc := NewScrubber(os.DirFS(dir), "integrity/manifest.json")
	if _, err := sc.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	evs := telemetry.DefaultFlightRecorder().Events(telemetry.EventFilter{Method: "scrub.pass", Limit: 1})
	if len(evs) != 1 {
		t.Fatalf("flight recorder holds %d scrub.pass events, want >= 1", len(evs))
	}
}

func TestQuarantinedPathRejectedAtFetch(t *testing.T) {
	dir := t.TempDir()
	_, brickPaths := scrubDataset(t, dir)
	flipByteInArray(t, brickPaths[0], "d")

	sc := NewScrubber(os.DirFS(dir), "integrity/manifest.json")
	if _, err := sc.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, dir, WithScrubber(sc))
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := "integrity/" + filepath.Base(brickPaths[0])
	if _, _, err := c.FetchFiltered(bad, "d", []float64{5}, EncIndexValue); !errors.Is(err, rpc.ErrCorrupt) {
		t.Fatalf("quarantined fetch err = %v, want ErrCorrupt", err)
	}
	if _, err := c.Describe(bad); !errors.Is(err, rpc.ErrCorrupt) {
		t.Fatalf("quarantined describe err = %v, want ErrCorrupt", err)
	}
	// Clean siblings stay servable.
	good := "integrity/" + filepath.Base(brickPaths[1])
	if _, _, err := c.FetchFiltered(good, "d", []float64{5}, EncIndexValue); err != nil {
		t.Fatalf("clean sibling fetch: %v", err)
	}
}

func TestPoolCountsCorruptionWithoutTrippingBreaker(t *testing.T) {
	g, f := sphereField(16)
	ds := grid.NewDataset(g)
	ds.MustAddField(f)
	dir := t.TempDir()
	abs, rel := writeChecksummedFile(t, dir, ds)
	flipByteInArray(t, abs, f.Name)

	_, addr := startServer(t, dir)
	pc, _ := DialPool([]string{addr}, nil, PoolOptions{
		Reconnect:        rpc.ReconnectOptions{MaxAttempts: 3},
		BreakerThreshold: 2,
	})
	defer pc.Close()

	open0 := mPoolBreakerOpen.Value()
	corr0 := mPoolCorruptions.Value()
	if _, _, err := pc.FetchFiltered(rel, f.Name, []float64{5}, EncIndexValue); !errors.Is(err, rpc.ErrCorrupt) {
		t.Fatalf("pool fetch err = %v, want ErrCorrupt", err)
	}
	if d := mPoolCorruptions.Value() - corr0; d < 3 {
		t.Errorf("core.pool.corruptions advanced by %d, want >= 3 (one per attempt)", d)
	}
	if d := mPoolBreakerOpen.Value() - open0; d != 0 {
		t.Errorf("breaker opened %d times on corrupt data, want 0 (node is healthy)", d)
	}
}

// corruptShardSetup builds a 2-shard deployment over two separate store
// copies of the same bricked dataset — shard 0's copy carries a
// corrupted brick, shard 1's is clean — so repair MUST cross shards.
func corruptShardSetup(t *testing.T) (man *vtkio.Manifest, addrs []string, g *grid.Uniform, f *grid.Field) {
	t.Helper()
	gg, ff := sphereField(16)
	ds := grid.NewDataset(gg)
	ds.MustAddField(ff)
	spec := grid.BrickSpec{NX: 2, NY: 1, NZ: 1, Ghost: 1}

	dirs := []string{t.TempDir(), t.TempDir()}
	for _, dir := range dirs {
		if err := os.MkdirAll(filepath.Join(dir, "run", "ts0"), 0o755); err != nil {
			t.Fatal(err)
		}
		bricks, err := spec.Bricks(gg.Dims)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bricks {
			sub, err := grid.ExtractBrick(ds, b)
			if err != nil {
				t.Fatal(err)
			}
			p := filepath.Join(dir, "run", "ts0", vtkio.BrickKey(b.ID))
			if err := vtkio.WriteFile(p, sub, vtkio.WriteOptions{Codec: compress.None, Checksum: true}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Damage brick 0 only in shard 0's copy.
	flipByteInArray(t, filepath.Join(dirs[0], "run", "ts0", vtkio.BrickKey(0)), "d")

	man, err := vtkio.BuildManifest(gg, spec, ds.FieldNames(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Pin brick 0 to shard 0 (the damaged copy) regardless of round-robin.
	man.Entries[0].Shard = 0
	addrs = make([]string, 2)
	for i, dir := range dirs {
		_, addrs[i] = startServer(t, dir, WithShardName(fmt.Sprintf("shard%d", i)))
	}
	return man, addrs, gg, ff
}

func TestShardedReadRepairFromSibling(t *testing.T) {
	man, addrs, g, f := corruptShardSetup(t)
	shards := make([]*Client, len(addrs))
	for i, a := range addrs {
		c, err := Dial(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = c
		t.Cleanup(func() { c.Close() })
	}
	sc, err := NewShardedClient(man, shards)
	if err != nil {
		t.Fatal(err)
	}

	repairs0 := mShardRepairs.Value()
	isos := []float64{5, 9.5}
	got, _, err := sc.FetchArray("run/ts0/", "d", isos, EncIndexValue)
	if err != nil {
		t.Fatalf("gather with corrupt owner: %v", err)
	}
	if d := mShardRepairs.Value() - repairs0; d == 0 {
		t.Error("core.shard.repairs did not advance")
	}
	// The repaired gather is still bit-identical to the unsharded truth.
	pre := &PreFilter{Isovalues: isos, Encoding: EncIndexValue}
	p, _, err := pre.Run(g, f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("repaired merge differs from truth at point %d", i)
		}
	}
}

func TestShardedGatherRejectsWrongPointCount(t *testing.T) {
	// A brick object replaced by one with the wrong extent decodes
	// cleanly but yields the wrong point count; the gather must fail
	// loudly instead of stitching a malformed field.
	g, f := sphereField(16)
	ds := grid.NewDataset(g)
	ds.MustAddField(f)
	spec := grid.BrickSpec{NX: 2, NY: 1, NZ: 1, Ghost: 1}
	dir := t.TempDir()
	man := writeBricks(t, dir, "run/ts0", ds, spec, 2)

	// Overwrite brick 1 with a brick extracted under a FINER bricking:
	// same key, valid file, fewer points than the manifest extent.
	fine := grid.BrickSpec{NX: 4, NY: 1, NZ: 1, Ghost: 0}
	fineBricks, err := fine.Bricks(g.Dims)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := grid.ExtractBrick(ds, fineBricks[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := vtkio.WriteFile(filepath.Join(dir, "run", "ts0", vtkio.BrickKey(1)), sub,
		vtkio.WriteOptions{Codec: compress.None}); err != nil {
		t.Fatal(err)
	}

	addrs := startShards(t, dir, 2)
	sc, err := DialSharded(man, addrs, nil, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	_, _, err = sc.FetchArray("run/ts0/", "d", []float64{5}, EncIndexValue)
	if err == nil {
		t.Fatal("wrong-point-count brick merged silently")
	}
}

func TestClientVerifiesResponseCRC(t *testing.T) {
	// A response whose recorded CRC disagrees with the bytes must decode
	// to ErrCorrupt before the payload decoder ever runs.
	g, f := sphereField(12)
	pre := &PreFilter{Isovalues: []float64{5}, Encoding: EncIndexValue}
	payload, st, err := pre.Run(g, f)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]any{
		"payload":  payload.Data,
		"readns":   int64(0),
		"filterns": int64(st.FilterTime),
		"rawbytes": st.RawBytes,
		"selected": int64(st.SelectedPoints),
		"crc":      int64(vtkio.Checksum(payload.Data) ^ 1),
	}
	if _, _, err := decodeFetchResult(m, 0); !errors.Is(err, rpc.ErrCorrupt) {
		t.Fatalf("mismatched crc err = %v, want ErrCorrupt", err)
	}
	// Matching CRC and absent CRC (old server) both pass.
	m["crc"] = int64(vtkio.Checksum(payload.Data))
	if _, _, err := decodeFetchResult(m, 0); err != nil {
		t.Fatalf("matching crc err = %v", err)
	}
	delete(m, "crc")
	if _, _, err := decodeFetchResult(m, 0); err != nil {
		t.Fatalf("absent crc err = %v", err)
	}
}

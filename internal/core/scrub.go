package core

import (
	"bytes"
	"context"
	"fmt"
	"io/fs"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"vizndp/internal/telemetry"
	"vizndp/internal/vtkio"
)

// Near-data scrubbing: the storage node audits its own bricks instead
// of waiting for a client to trip over bad bytes at fetch time. The
// scrubber walks each registered manifest's per-timestep brick objects,
// verifies every stored byte — whole-object CRC against the manifest
// entry when recorded, per-page CRCs against the object's own trailing
// table — and quarantines what fails. Quarantined paths are rejected at
// the fetch boundary with rpc.ErrCorrupt (see Server.quarantined), so
// a sharded client repairs from a sibling replica immediately rather
// than re-reading known-bad storage on every request.

var (
	mScrubScanned     = telemetry.Default().Counter("core.scrub.scanned")
	mScrubCorrupt     = telemetry.Default().Counter("core.scrub.corrupt")
	mScrubQuarantined = telemetry.Default().Counter("core.scrub.quarantined")
)

var scrubLog = telemetry.Logger("scrub")

// Scrubber audits brick objects under the same filesystem the server
// reads through. Safe for concurrent use; the server consults it on
// every fetch via Quarantined.
type Scrubber struct {
	fsys fs.FS

	mu         sync.Mutex
	manifests  []string
	quarantine map[string]string // object path -> reason
	passes     int64
	lastReport ScrubReport
	lastTime   time.Time

	stop chan struct{}
	done chan struct{}
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// Scanned counts objects whose bytes were fully verified.
	Scanned int
	// Corrupt counts objects that failed verification this pass.
	Corrupt int
	// Quarantined counts objects newly quarantined this pass (already-
	// quarantined objects are skipped, not re-verified).
	Quarantined int
	// Skipped counts objects left unverified: already quarantined, or
	// carrying neither a manifest CRC nor a checksum section.
	Skipped int
	// Errors lists per-object verification failures, path-prefixed.
	Errors []string
}

// ScrubStatus is the point-in-time view served at /scrub.
type ScrubStatus struct {
	Manifests   []string          `json:"manifests"`
	Passes      int64             `json:"passes"`
	LastTime    time.Time         `json:"lastTime"`
	LastScanned int               `json:"lastScanned"`
	LastCorrupt int               `json:"lastCorrupt"`
	LastSkipped int               `json:"lastSkipped"`
	Quarantined map[string]string `json:"quarantined,omitempty"`
}

// NewScrubber builds a scrubber over fsys auditing the given manifest
// paths (each names a brick manifest; the bricks live in per-timestep
// subdirectories next to it).
func NewScrubber(fsys fs.FS, manifests ...string) *Scrubber {
	return &Scrubber{
		fsys:       fsys,
		manifests:  append([]string(nil), manifests...),
		quarantine: make(map[string]string),
	}
}

// AddManifest registers another manifest for subsequent passes.
func (sc *Scrubber) AddManifest(manifestPath string) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.manifests = append(sc.manifests, manifestPath)
}

// Quarantined returns the quarantine reason for an object path, or ""
// when the path is clean.
func (sc *Scrubber) Quarantined(objPath string) string {
	if sc == nil {
		return ""
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.quarantine[objPath]
}

// Status snapshots the scrubber for /scrub.
func (sc *Scrubber) Status() ScrubStatus {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	st := ScrubStatus{
		Manifests:   append([]string(nil), sc.manifests...),
		Passes:      sc.passes,
		LastTime:    sc.lastTime,
		LastScanned: sc.lastReport.Scanned,
		LastCorrupt: sc.lastReport.Corrupt,
		LastSkipped: sc.lastReport.Skipped,
	}
	if len(sc.quarantine) > 0 {
		st.Quarantined = make(map[string]string, len(sc.quarantine))
		for k, v := range sc.quarantine {
			st.Quarantined[k] = v
		}
	}
	return st
}

// RunOnce performs one full scrub pass over every registered manifest's
// bricks, recording the pass as a "scrub.pass" wide event in the flight
// recorder. Objects already quarantined are skipped. The error return
// covers pass-level failures (an unreadable manifest); per-object
// corruption is reported in the ScrubReport, not as an error.
func (sc *Scrubber) RunOnce(ctx context.Context) (ScrubReport, error) {
	ev := telemetry.DefaultFlightRecorder().Begin(telemetry.KindServer, "scrub.pass")
	rep, err := sc.runOnce(ctx)
	ev.SetAttr("scanned", rep.Scanned)
	ev.SetAttr("corrupt", rep.Corrupt)
	ev.SetAttr("quarantined", rep.Quarantined)
	ev.Finish(err)

	sc.mu.Lock()
	sc.passes++
	sc.lastReport = rep
	sc.lastTime = time.Now()
	sc.mu.Unlock()
	return rep, err
}

func (sc *Scrubber) runOnce(ctx context.Context) (ScrubReport, error) {
	sc.mu.Lock()
	manifests := append([]string(nil), sc.manifests...)
	sc.mu.Unlock()

	var rep ScrubReport
	for _, mp := range manifests {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		data, err := fs.ReadFile(sc.fsys, mp)
		if err != nil {
			return rep, fmt.Errorf("core: scrub reading manifest %s: %w", mp, err)
		}
		m, err := vtkio.DecodeManifest(data)
		if err != nil {
			return rep, fmt.Errorf("core: scrub manifest %s: %w", mp, err)
		}
		dirs, err := sc.stepDirs(mp)
		if err != nil {
			return rep, err
		}
		for _, dir := range dirs {
			for i := range m.Entries {
				if err := ctx.Err(); err != nil {
					return rep, err
				}
				sc.scrubObject(path.Join(dir, m.Entries[i].Key), m.Entries[i].Checksum, &rep)
			}
		}
	}
	if rep.Corrupt > 0 {
		scrubLog.Warn("scrub pass found corruption",
			"scanned", rep.Scanned, "corrupt", rep.Corrupt, "quarantined", rep.Quarantined)
	}
	return rep, nil
}

// stepDirs lists the per-timestep brick directories (ts*/ subdirs) next
// to a manifest; a manifest whose directory has no ts* subdirectories
// holds its bricks directly (single-step layout).
func (sc *Scrubber) stepDirs(manifestPath string) ([]string, error) {
	base := path.Dir(manifestPath)
	entries, err := fs.ReadDir(sc.fsys, base)
	if err != nil {
		return nil, fmt.Errorf("core: scrub listing %s: %w", base, err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "ts") {
			dirs = append(dirs, path.Join(base, e.Name()))
		}
	}
	if len(dirs) == 0 {
		dirs = []string{base}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// scrubObject verifies one brick object end to end: whole-object CRC
// against the manifest entry when one was recorded, then the object's
// own page-checksum section. A failure quarantines the path.
func (sc *Scrubber) scrubObject(objPath string, wantCRC uint32, rep *ScrubReport) {
	sc.mu.Lock()
	_, isQuarantined := sc.quarantine[objPath]
	sc.mu.Unlock()
	if isQuarantined {
		rep.Skipped++
		return
	}
	verified, err := sc.verifyObject(objPath, wantCRC)
	if err == nil {
		if verified {
			rep.Scanned++
			mScrubScanned.Inc()
		} else {
			rep.Skipped++
		}
		return
	}
	rep.Corrupt++
	mScrubCorrupt.Inc()
	rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", objPath, err))
	sc.mu.Lock()
	if _, dup := sc.quarantine[objPath]; !dup {
		sc.quarantine[objPath] = err.Error()
		rep.Quarantined++
		mScrubQuarantined.Inc()
	}
	sc.mu.Unlock()
	scrubLog.Warn("quarantined corrupt object", "path", objPath, "err", err)
}

// verifyObject checks one object's bytes. Returns (false, nil) when the
// object carries nothing to verify against (no manifest CRC recorded
// and no checksum section in the file).
func (sc *Scrubber) verifyObject(objPath string, wantCRC uint32) (bool, error) {
	data, err := fs.ReadFile(sc.fsys, objPath)
	if err != nil {
		// A brick the manifest promises but the store cannot produce is
		// as lost as a corrupt one.
		return false, fmt.Errorf("unreadable: %w", err)
	}
	verified := false
	if wantCRC != 0 {
		if got := vtkio.Checksum(data); got != wantCRC {
			return false, fmt.Errorf("%w: whole object crc %08x, manifest records %08x",
				vtkio.ErrChecksum, got, wantCRC)
		}
		verified = true
	}
	r, err := vtkio.OpenReader(bytes.NewReader(data))
	if err != nil {
		return false, fmt.Errorf("unparseable: %w", err)
	}
	if r.Header().Checksums != nil {
		if err := r.VerifyChecksums(); err != nil {
			return false, err
		}
		verified = true
	}
	return verified, nil
}

// Start runs scrub passes every interval (with ±10% jitter so a shard
// fleet's passes decorrelate) until Stop. interval <= 0 is a no-op.
func (sc *Scrubber) Start(interval time.Duration) {
	if interval <= 0 || sc.stop != nil {
		return
	}
	sc.stop = make(chan struct{})
	sc.done = make(chan struct{})
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	go func() {
		defer close(sc.done)
		for {
			jitter := time.Duration(float64(interval) * 0.1 * (2*rng.Float64() - 1))
			select {
			case <-sc.stop:
				return
			case <-time.After(interval + jitter):
			}
			// vizlint:ignore ctxflow scrub pass root: the periodic loop has no upstream caller; Stop cancels via sc.stop below
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				select {
				case <-sc.stop:
					cancel()
				case <-ctx.Done():
				}
			}()
			if _, err := sc.RunOnce(ctx); err != nil && ctx.Err() == nil {
				scrubLog.Warn("scrub pass failed", "err", err)
			}
			cancel()
		}
	}()
}

// Stop halts the background loop started by Start and waits for any
// in-flight pass to wind down.
func (sc *Scrubber) Stop() {
	if sc.stop == nil {
		return
	}
	close(sc.stop)
	<-sc.done
	sc.stop = nil
	sc.done = nil
}

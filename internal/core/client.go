package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vizndp/internal/contour"
	"vizndp/internal/grid"
	"vizndp/internal/rpc"
	"vizndp/internal/telemetry"
	"vizndp/internal/vtkio"
)

// mClientFallbacks counts degraded fetches: pre-filtered fetches that
// failed remotely and were served by FetchRaw plus a local pre-filter.
var mClientFallbacks = telemetry.Default().Counter("core.client.fallbacks")

// mClientWireCorrupt counts responses whose bytes arrived damaged: the
// server's recorded payload CRC and the received bytes disagree.
var mClientWireCorrupt = telemetry.Default().Counter("core.client.corrupt.wire")

// verifyWireCRC checks received bytes against the "crc" field a new
// server records in its response maps. Responses from older servers
// carry no field and pass unverified (nil). A mismatch wraps
// rpc.ErrCorrupt so callers route it to data-level recovery.
func verifyWireCRC(m map[string]any, what string, data []byte) error {
	var want uint32
	switch v := m["crc"].(type) {
	case nil:
		return nil
	case int64:
		want = uint32(v)
	case uint64:
		want = uint32(v)
	default:
		return fmt.Errorf("core: %s crc is %T", what, v)
	}
	if got := vtkio.Checksum(data); got != want {
		mClientWireCorrupt.Inc()
		return fmt.Errorf("%w: %s bytes arrived with crc %08x, server recorded %08x",
			rpc.ErrCorrupt, what, got, want)
	}
	return nil
}

var clientLog = telemetry.Logger("ndpclient")

// Caller is the RPC surface Client needs. Both *rpc.Client (one
// connection, fail-fast) and *rpc.ReconnectClient (retries, re-dials)
// implement it.
type Caller interface {
	CallContext(ctx context.Context, method string, args ...any) (any, error)
	Close() error
}

// Client drives a remote NDP server. It is the client-side counterpart
// of the storage-side partial pipeline: it requests pre-filtered
// payloads and hands them to the post-filter.
type Client struct {
	rpc Caller
	// fallback enables graceful degradation: a pre-filtered fetch whose
	// RPC fails (after whatever retries the Caller performs) falls back
	// to FetchRaw plus a local pre-filter pass, so the contour still
	// renders — just without the transfer reduction.
	fallback bool
}

// RetryableMethods returns the NDP methods safe to retry after a
// transport failure. Every current method is a read-only fetch, so all
// are idempotent; a method with side effects must not be added here.
func RetryableMethods() map[string]bool {
	return map[string]bool{
		MethodList:       true,
		MethodDescribe:   true,
		MethodFetch:      true,
		MethodFetchRange: true,
		MethodFetchSlice: true,
		MethodFetchRaw:   true,
		MethodManifest:   true,
	}
}

// Dial connects to an NDP server at addr, optionally through a custom
// dial function (for example a netsim.Link's Dial).
func Dial(addr string, dialFn func(network, addr string) (net.Conn, error)) (*Client, error) {
	c, err := rpc.Dial("tcp", addr, dialFn)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// DialFaultTolerant returns a client that survives storage-node
// restarts, dropped connections, and slow links: calls are retried with
// backoff on transport failures (all NDP methods are idempotent reads
// unless opts.Retryable narrows the set), dead connections are
// re-dialed lazily, and a pre-filtered fetch that still fails degrades
// to FetchRaw plus a local pre-filter pass. No connection is made until
// the first call, so the server may come up later.
func DialFaultTolerant(addr string, dialFn func(network, addr string) (net.Conn, error), opts rpc.ReconnectOptions) *Client {
	if opts.Retryable == nil {
		opts.Retryable = RetryableMethods()
	}
	return &Client{
		rpc:      rpc.NewReconnectClient("tcp", addr, dialFn, opts),
		fallback: true,
	}
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{rpc: rpc.NewClient(conn)}
}

// Close tears the connection down.
func (c *Client) Close() error { return c.rpc.Close() }

// List returns the entries under dir on the server's store; directories
// carry a trailing slash.
func (c *Client) List(dir string) ([]string, error) {
	return c.ListContext(context.Background(), dir)
}

// ListContext is List under a caller context; a telemetry span in ctx
// propagates to the server so its work joins the caller's trace.
func (c *Client) ListContext(ctx context.Context, dir string) ([]string, error) {
	res, err := c.rpc.CallContext(ctx, MethodList, dir)
	if err != nil {
		return nil, err
	}
	items, ok := res.([]any)
	if !ok {
		return nil, fmt.Errorf("core: list returned %T", res)
	}
	out := make([]string, 0, len(items))
	for _, it := range items {
		s, ok := it.(string)
		if !ok {
			return nil, fmt.Errorf("core: list entry is %T", it)
		}
		out = append(out, s)
	}
	return out, nil
}

// ArrayDesc describes one stored array on the server.
type ArrayDesc struct {
	Name           string
	Codec          string
	CompressedSize int64
	RawSize        int64
}

// Description is the remote dataset's metadata.
type Description struct {
	Grid *grid.Uniform
	// Rect carries explicit coordinates when the remote file stores a
	// rectilinear grid; nil for uniform files.
	Rect   *grid.Rectilinear
	Arrays []ArrayDesc
}

// Array returns the description of the named array, or nil.
func (d *Description) Array(name string) *ArrayDesc {
	for i := range d.Arrays {
		if d.Arrays[i].Name == name {
			return &d.Arrays[i]
		}
	}
	return nil
}

// Describe fetches a dataset file's metadata.
func (c *Client) Describe(path string) (*Description, error) {
	return c.DescribeContext(context.Background(), path)
}

// DescribeContext is Describe under a caller context.
func (c *Client) DescribeContext(ctx context.Context, path string) (*Description, error) {
	res, err := c.rpc.CallContext(ctx, MethodDescribe, path)
	if err != nil {
		return nil, err
	}
	m, ok := res.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("core: describe returned %T", res)
	}
	dims, err := int3(m["dims"])
	if err != nil {
		return nil, fmt.Errorf("core: describe dims: %w", err)
	}
	origin, err := float3(m["origin"])
	if err != nil {
		return nil, fmt.Errorf("core: describe origin: %w", err)
	}
	spacing, err := float3(m["spacing"])
	if err != nil {
		return nil, fmt.Errorf("core: describe spacing: %w", err)
	}
	d := &Description{
		Grid: &grid.Uniform{
			Dims:    grid.Dims{X: dims[0], Y: dims[1], Z: dims[2]},
			Origin:  grid.Vec3{X: origin[0], Y: origin[1], Z: origin[2]},
			Spacing: grid.Vec3{X: spacing[0], Y: spacing[1], Z: spacing[2]},
		},
	}
	if _, hasRect := m["coordsX"]; hasRect {
		cx, err := floatSlice(m["coordsX"])
		if err != nil {
			return nil, fmt.Errorf("core: describe coordsX: %w", err)
		}
		cy, err := floatSlice(m["coordsY"])
		if err != nil {
			return nil, fmt.Errorf("core: describe coordsY: %w", err)
		}
		cz, err := floatSlice(m["coordsZ"])
		if err != nil {
			return nil, fmt.Errorf("core: describe coordsZ: %w", err)
		}
		d.Rect = grid.NewRectilinear(cx, cy, cz)
		if err := d.Rect.Validate(); err != nil {
			return nil, err
		}
	}
	arrays, _ := m["arrays"].([]any)
	for _, a := range arrays {
		am, ok := a.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("core: describe array entry is %T", a)
		}
		name, _ := am["name"].(string)
		codec, _ := am["codec"].(string)
		comp, _ := am["comp"].(int64)
		raw, _ := am["raw"].(int64)
		d.Arrays = append(d.Arrays, ArrayDesc{
			Name: name, Codec: codec, CompressedSize: comp, RawSize: raw,
		})
	}
	return d, nil
}

// FetchStats reports the cost breakdown of one pre-filtered fetch.
type FetchStats struct {
	// ReadTime is the server-side storage read (+ decompression) time.
	ReadTime time.Duration
	// FilterTime is the server-side pre-filter scan + encode time.
	FilterTime time.Duration
	// TransferTime is the client-observed RPC time minus the server-side
	// work, i.e. the network cost.
	TransferTime time.Duration
	// TotalTime is the client-observed end-to-end fetch time.
	TotalTime time.Duration
	// RawBytes is the full array size the baseline would have moved.
	RawBytes int64
	// PayloadBytes is what actually crossed the network.
	PayloadBytes int64
	// SelectedPoints is the number of transferred mesh points.
	SelectedPoints int
	// Degraded marks a fetch served by the fallback path: the remote
	// pre-filter was unreachable, so the whole raw array crossed the
	// network and the pre-filter ran locally. PayloadBytes then reports
	// the raw transfer, keeping the cost accounting honest.
	Degraded bool
}

// FetchFiltered asks the server to pre-filter one array for the given
// isovalues and returns the decoded payload.
func (c *Client) FetchFiltered(path, array string, isovalues []float64, enc Encoding) (*Payload, *FetchStats, error) {
	return c.FetchFilteredContext(context.Background(), path, array, isovalues, enc)
}

// FetchFilteredContext is FetchFiltered under a caller context; a
// telemetry span in ctx makes the server's read and pre-filter spans
// come back as part of the caller's trace.
func (c *Client) FetchFilteredContext(ctx context.Context, path, array string, isovalues []float64, enc Encoding) (*Payload, *FetchStats, error) {
	isos := make([]any, len(isovalues))
	for i, v := range isovalues {
		isos[i] = v
	}
	// The client-side wide event covers the whole fetch — retries,
	// failovers, and the degraded fallback included — while the server
	// records its own per-attempt events. The SLO monitor separates the
	// two by kind.
	ev := telemetry.DefaultFlightRecorder().Begin(telemetry.KindClient, MethodFetch)
	ev.SetAttr("path", path)
	ev.SetAttr("array", array)
	if span := telemetry.SpanFromContext(ctx); span != nil {
		ev.SetSpanIDs(span.Trace(), span.ID())
	}
	ctx = telemetry.ContextWithEvent(ctx, ev)
	payload, st, err := c.fetchFiltered(ctx, path, array, isovalues, isos, enc, ev)
	if st != nil {
		ev.SetBytesIn(st.PayloadBytes)
	}
	ev.Finish(err)
	return payload, st, err
}

// fetchFiltered is FetchFilteredContext's body, split out so the wide
// event wraps every return path uniformly.
func (c *Client) fetchFiltered(ctx context.Context, path, array string, isovalues []float64, isos []any, enc Encoding, ev *telemetry.ActiveEvent) (*Payload, *FetchStats, error) {
	start := time.Now()
	res, err := c.rpc.CallContext(ctx, MethodFetch, path, array, isos, enc.String())
	if err == nil {
		payload, st, derr := decodeFetchResult(res, time.Since(start))
		// A payload that arrived damaged (wire CRC mismatch) is worth one
		// degraded retry: the fault was in flight, not in the server, and
		// the raw path re-reads everything end to end.
		if derr == nil || !c.fallback || ctx.Err() != nil || !errors.Is(derr, rpc.ErrCorrupt) {
			return payload, st, derr
		}
		err = derr
	} else if !c.fallback || ctx.Err() != nil {
		return nil, nil, err
	}
	payload, st, ferr := c.fetchFilteredFallback(ctx, path, array, isovalues, enc, start)
	if ferr != nil {
		// The degraded path failed too; the original error names the
		// root cause, the fallback error says why degradation could
		// not mask it.
		return nil, nil, fmt.Errorf("core: pre-filtered fetch failed (%w); fallback also failed: %w", err, ferr)
	}
	ev.MarkDegraded()
	clientLog.Warn("pre-filtered fetch degraded to raw transfer",
		"path", path, "array", array, "err", err)
	return payload, st, nil
}

// fetchFilteredFallback is the graceful-degradation path: pull the whole
// raw array and run the pre-filter locally. The produced payload is
// bit-identical to what the storage-side pre-filter would have sent —
// both sides run the same PreFilter over the same decoded float32
// values — so downstream contours cannot tell the difference; only the
// transfer cost (and FetchStats.Degraded) changes.
func (c *Client) fetchFilteredFallback(ctx context.Context, path, array string, isovalues []float64, enc Encoding, start time.Time) (*Payload, *FetchStats, error) {
	_, span := telemetry.StartSpan(ctx, "fallback.prefilter")
	defer span.End()
	span.SetAttr("path", path)
	span.SetAttr("array", array)
	desc, err := c.DescribeContext(ctx, path)
	if err != nil {
		return nil, nil, fmt.Errorf("describe: %w", err)
	}
	raw, readTime, err := c.FetchRawContext(ctx, path, array)
	if err != nil {
		return nil, nil, fmt.Errorf("raw fetch: %w", err)
	}
	vals, err := vtkio.BytesToFloats(raw)
	if err != nil {
		return nil, nil, err
	}
	if len(vals) != desc.Grid.NumPoints() {
		return nil, nil, fmt.Errorf("raw array %q has %d values, grid has %d points",
			array, len(vals), desc.Grid.NumPoints())
	}
	pre := &PreFilter{Isovalues: isovalues, Encoding: enc}
	payload, pst, err := pre.Run(desc.Grid, &grid.Field{Name: array, Values: vals})
	if err != nil {
		return nil, nil, err
	}
	mClientFallbacks.Inc()
	span.SetAttr("selected", pst.SelectedPoints)
	stats := &FetchStats{
		ReadTime:       readTime,
		FilterTime:     pst.FilterTime,
		TotalTime:      time.Since(start),
		RawBytes:       pst.RawBytes,
		PayloadBytes:   int64(len(raw)),
		SelectedPoints: pst.SelectedPoints,
		Degraded:       true,
	}
	if rest := stats.TotalTime - stats.ReadTime - stats.FilterTime; rest > 0 {
		stats.TransferTime = rest
	}
	return payload, stats, nil
}

// MultiRequest names one pre-filtered fetch in a FetchFilteredMulti
// fan-out: one array of one file, filtered at the given isovalues.
type MultiRequest struct {
	Path      string
	Array     string
	Isovalues []float64
	Encoding  Encoding
}

// MultiResult is the outcome of one MultiRequest. When Err is nil,
// Payload and Stats are valid.
type MultiResult struct {
	Payload *Payload
	Stats   *FetchStats
	Err     error
}

// DefaultMultiParallelism bounds a FetchFilteredMulti's in-flight
// requests when the caller passes parallelism <= 0.
const DefaultMultiParallelism = 8

// FetchFilteredMulti issues many pre-filtered fetches concurrently over
// the one multiplexed RPC connection and returns the results in request
// order. At most parallelism requests are in flight at once (<= 0 uses
// DefaultMultiParallelism). Failures are reported per-request rather
// than failing the batch, so one bad array name doesn't discard the
// sibling payloads; with the server's array cache enabled, concurrent
// requests against the same array coalesce into a single storage read.
func (c *Client) FetchFilteredMulti(reqs []MultiRequest, parallelism int) []MultiResult {
	return c.FetchFilteredMultiContext(context.Background(), reqs, parallelism)
}

// FetchFilteredMultiContext is FetchFilteredMulti under a caller
// context; cancelling ctx fails the not-yet-issued requests.
func (c *Client) FetchFilteredMultiContext(ctx context.Context, reqs []MultiRequest, parallelism int) []MultiResult {
	if parallelism <= 0 {
		parallelism = DefaultMultiParallelism
	}
	if parallelism > len(reqs) {
		parallelism = len(reqs)
	}
	results := make([]MultiResult, len(reqs))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := range reqs {
		// Acquire the slot before spawning so at most parallelism
		// goroutines ever exist; spawning first and acquiring inside
		// would briefly stand up one goroutine per request.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			results[i].Err = ctx.Err()
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			r := &reqs[i]
			results[i].Payload, results[i].Stats, results[i].Err =
				c.FetchFilteredContext(ctx, r.Path, r.Array, r.Isovalues, r.Encoding)
		}(i)
	}
	wg.Wait()
	return results
}

// FetchRange asks the server to pre-filter one array for a threshold
// range [lo, hi] — the split threshold filter's remote half.
func (c *Client) FetchRange(path, array string, lo, hi float64, enc Encoding) (*Payload, *FetchStats, error) {
	return c.FetchRangeContext(context.Background(), path, array, lo, hi, enc)
}

// FetchRangeContext is FetchRange under a caller context.
func (c *Client) FetchRangeContext(ctx context.Context, path, array string, lo, hi float64, enc Encoding) (*Payload, *FetchStats, error) {
	start := time.Now()
	res, err := c.rpc.CallContext(ctx, MethodFetchRange, path, array, lo, hi, enc.String())
	if err != nil {
		return nil, nil, err
	}
	return decodeFetchResult(res, time.Since(start))
}

// FetchSlice asks the server to extract the plane axis=index from one
// array and ship only that plane. It returns the slice's 2D grid, its
// values, and the fetch statistics.
func (c *Client) FetchSlice(path, array string, axis contour.Axis, index int) (*grid.Uniform, []float32, *FetchStats, error) {
	return c.FetchSliceContext(context.Background(), path, array, axis, index)
}

// FetchSliceContext is FetchSlice under a caller context.
func (c *Client) FetchSliceContext(ctx context.Context, path, array string, axis contour.Axis, index int) (*grid.Uniform, []float32, *FetchStats, error) {
	start := time.Now()
	res, err := c.rpc.CallContext(ctx, MethodFetchSlice, path, array, axis.String(), index)
	if err != nil {
		return nil, nil, nil, err
	}
	total := time.Since(start)
	m, ok := res.(map[string]any)
	if !ok {
		return nil, nil, nil, fmt.Errorf("core: fetchslice returned %T", res)
	}
	dims, err := int3(m["dims"])
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: fetchslice dims: %w", err)
	}
	origin, err := float3(m["origin"])
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: fetchslice origin: %w", err)
	}
	spacing, err := float3(m["spacing"])
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: fetchslice spacing: %w", err)
	}
	raw, ok := m["values"].([]byte)
	if !ok {
		return nil, nil, nil, fmt.Errorf("core: fetchslice values is %T", m["values"])
	}
	if err := verifyWireCRC(m, "slice values", raw); err != nil {
		return nil, nil, nil, err
	}
	vals, err := vtkio.BytesToFloats(raw)
	if err != nil {
		return nil, nil, nil, err
	}
	g2 := &grid.Uniform{
		Dims:    grid.Dims{X: dims[0], Y: dims[1], Z: dims[2]},
		Origin:  grid.Vec3{X: origin[0], Y: origin[1], Z: origin[2]},
		Spacing: grid.Vec3{X: spacing[0], Y: spacing[1], Z: spacing[2]},
	}
	if len(vals) != g2.NumPoints() {
		return nil, nil, nil, fmt.Errorf("core: slice has %d values for %d points",
			len(vals), g2.NumPoints())
	}
	readNS, _ := m["readns"].(int64)
	filterNS, _ := m["filterns"].(int64)
	rawBytes, _ := m["rawbytes"].(int64)
	stats := &FetchStats{
		ReadTime:       time.Duration(readNS),
		FilterTime:     time.Duration(filterNS),
		TotalTime:      total,
		RawBytes:       rawBytes,
		PayloadBytes:   int64(len(raw)),
		SelectedPoints: len(vals),
	}
	if rest := total - stats.ReadTime - stats.FilterTime; rest > 0 {
		stats.TransferTime = rest
	}
	return g2, vals, stats, nil
}

// decodeFetchResult unpacks the shared fetch reply shape.
func decodeFetchResult(res any, total time.Duration) (*Payload, *FetchStats, error) {
	m, ok := res.(map[string]any)
	if !ok {
		return nil, nil, fmt.Errorf("core: fetch returned %T", res)
	}
	data, ok := m["payload"].([]byte)
	if !ok {
		return nil, nil, fmt.Errorf("core: fetch payload is %T", m["payload"])
	}
	// Verify transport integrity before decoding: a flipped bit inside
	// the payload's packed varints would otherwise decode into silently
	// wrong geometry rather than an error.
	if err := verifyWireCRC(m, "fetch payload", data); err != nil {
		return nil, nil, err
	}
	payload, err := DecodePayload(data)
	if err != nil {
		return nil, nil, err
	}
	readNS, _ := m["readns"].(int64)
	filterNS, _ := m["filterns"].(int64)
	rawBytes, _ := m["rawbytes"].(int64)
	selected, _ := m["selected"].(int64)
	stats := &FetchStats{
		ReadTime:       time.Duration(readNS),
		FilterTime:     time.Duration(filterNS),
		TotalTime:      total,
		RawBytes:       rawBytes,
		PayloadBytes:   int64(payload.WireSize()),
		SelectedPoints: int(selected),
	}
	if rest := total - stats.ReadTime - stats.FilterTime; rest > 0 {
		stats.TransferTime = rest
	}
	return payload, stats, nil
}

// FetchManifest pulls and validates a brick manifest from the server's
// store — the first call of a sharded client session, typically against
// any one shard (every shard mounts the same store).
func (c *Client) FetchManifest(path string) (*vtkio.Manifest, error) {
	return c.FetchManifestContext(context.Background(), path)
}

// FetchManifestContext is FetchManifest under a caller context.
func (c *Client) FetchManifestContext(ctx context.Context, path string) (*vtkio.Manifest, error) {
	res, err := c.rpc.CallContext(ctx, MethodManifest, path)
	if err != nil {
		return nil, err
	}
	m, ok := res.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("core: manifest returned %T", res)
	}
	data, ok := m["manifest"].([]byte)
	if !ok {
		return nil, fmt.Errorf("core: manifest data is %T", m["manifest"])
	}
	if err := verifyWireCRC(m, "manifest", data); err != nil {
		return nil, err
	}
	return vtkio.DecodeManifest(data)
}

// FetchRaw pulls a whole array, bypassing the pre-filter. It is what the
// baseline would transfer and exists for measurement and debugging.
func (c *Client) FetchRaw(path, array string) ([]byte, time.Duration, error) {
	return c.FetchRawContext(context.Background(), path, array)
}

// FetchRawContext is FetchRaw under a caller context.
func (c *Client) FetchRawContext(ctx context.Context, path, array string) ([]byte, time.Duration, error) {
	res, err := c.rpc.CallContext(ctx, MethodFetchRaw, path, array)
	if err != nil {
		return nil, 0, err
	}
	m, ok := res.(map[string]any)
	if !ok {
		return nil, 0, fmt.Errorf("core: fetchraw returned %T", res)
	}
	data, ok := m["data"].([]byte)
	if !ok {
		return nil, 0, fmt.Errorf("core: fetchraw data is %T", m["data"])
	}
	if err := verifyWireCRC(m, "raw array", data); err != nil {
		return nil, 0, err
	}
	readNS, _ := m["readns"].(int64)
	return data, time.Duration(readNS), nil
}

func floatSlice(v any) ([]float64, error) {
	arr, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("want array, got %T", v)
	}
	out := make([]float64, len(arr))
	for i, e := range arr {
		switch n := e.(type) {
		case float64:
			out[i] = n
		case int64:
			out[i] = float64(n)
		default:
			return nil, fmt.Errorf("element %d is %T", i, e)
		}
	}
	return out, nil
}

func int3(v any) ([3]int, error) {
	arr, ok := v.([]any)
	if !ok || len(arr) != 3 {
		return [3]int{}, fmt.Errorf("want 3-array, got %T", v)
	}
	var out [3]int
	for i, e := range arr {
		n, ok := e.(int64)
		if !ok {
			return out, fmt.Errorf("element %d is %T", i, e)
		}
		out[i] = int(n)
	}
	return out, nil
}

func float3(v any) ([3]float64, error) {
	arr, ok := v.([]any)
	if !ok || len(arr) != 3 {
		return [3]float64{}, fmt.Errorf("want 3-array, got %T", v)
	}
	var out [3]float64
	for i, e := range arr {
		switch n := e.(type) {
		case float64:
			out[i] = n
		case int64:
			out[i] = float64(n)
		default:
			return out, fmt.Errorf("element %d is %T", i, e)
		}
	}
	return out, nil
}

package core

import (
	"fmt"
	"time"

	"vizndp/internal/contour"
	"vizndp/internal/grid"
)

// PreFilter is the storage-side half of the split contour filter. It
// scans a full data array and emits the sparse payload the client-side
// post-filter needs. One instance is dedicated to one data array, as in
// the VTK prototype.
type PreFilter struct {
	// Isovalues are the contour values the downstream filter will render;
	// the selection is the union over all of them.
	Isovalues []float64
	// Encoding selects the payload wire format (EncAuto by default).
	Encoding Encoding
}

// PreFilterStats reports what the pre-filter did, mirroring the
// measurements the paper reports (selection rate, reduced transfer size).
type PreFilterStats struct {
	// NumPoints is the full array length.
	NumPoints int
	// SelectedPoints is how many points the contour needs.
	SelectedPoints int
	// RawBytes is the full array's in-memory size.
	RawBytes int64
	// PayloadBytes is the encoded transfer size.
	PayloadBytes int64
	// FilterTime is the time spent scanning and encoding.
	FilterTime time.Duration
}

// Selectivity returns the selected fraction of mesh points.
func (s *PreFilterStats) Selectivity() float64 {
	if s.NumPoints == 0 {
		return 0
	}
	return float64(s.SelectedPoints) / float64(s.NumPoints)
}

// Reduction returns RawBytes/PayloadBytes, the transfer-size reduction
// factor analogous to the paper's Fig. 1.
func (s *PreFilterStats) Reduction() float64 {
	if s.PayloadBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.PayloadBytes)
}

// Run selects and encodes the subset of field needed to contour it at
// the configured isovalues.
func (f *PreFilter) Run(g *grid.Uniform, field *grid.Field) (*Payload, *PreFilterStats, error) {
	if len(f.Isovalues) == 0 {
		return nil, nil, fmt.Errorf("core: pre-filter has no isovalues")
	}
	start := time.Now()
	mask, err := contour.SelectCellCorners(g, field.Values, f.Isovalues)
	if err != nil {
		return nil, nil, fmt.Errorf("core: pre-filter %q: %w", field.Name, err)
	}
	payload, err := EncodeSelection(mask, field.Values, f.Encoding)
	if err != nil {
		return nil, nil, err
	}
	stats := &PreFilterStats{
		NumPoints:      field.Len(),
		SelectedPoints: payload.Count,
		RawBytes:       int64(4 * field.Len()),
		PayloadBytes:   int64(payload.WireSize()),
		FilterTime:     time.Since(start),
	}
	return payload, stats, nil
}

// PostFilter is the client-side half: it reconstructs the sparse array
// and completes contour generation. Its isovalues must match the
// pre-filter's (the RPC client keeps them in sync).
type PostFilter struct {
	Isovalues []float64
}

// Reconstruct expands a payload into a NaN-padded field.
func (f *PostFilter) Reconstruct(name string, p *Payload) (*grid.Field, error) {
	vals, err := p.Reconstruct()
	if err != nil {
		return nil, err
	}
	return &grid.Field{Name: name, Values: vals}, nil
}

// Contour reconstructs the payload and extracts the contour, producing
// exactly the mesh a full-array contour would.
func (f *PostFilter) Contour(g *grid.Uniform, name string, p *Payload) (*contour.Mesh, error) {
	if g.NumPoints() != p.NumPoints {
		return nil, fmt.Errorf("core: payload has %d points, grid %q has %d",
			p.NumPoints, g.Dims, g.NumPoints())
	}
	fld, err := f.Reconstruct(name, p)
	if err != nil {
		return nil, err
	}
	return contour.MarchingTetrahedra(g, fld.Values, f.Isovalues)
}

// RangePreFilter is the storage-side half of a split threshold filter —
// the paper's "more filter types" future-work item. It selects every
// corner of every cell with at least one value in [Lo, Hi].
type RangePreFilter struct {
	Lo, Hi   float64
	Encoding Encoding
}

// Run selects and encodes the subset of field the threshold needs.
func (f *RangePreFilter) Run(g *grid.Uniform, field *grid.Field) (*Payload, *PreFilterStats, error) {
	start := time.Now()
	mask, err := contour.SelectRangeCorners(g, field.Values, f.Lo, f.Hi)
	if err != nil {
		return nil, nil, fmt.Errorf("core: range pre-filter %q: %w", field.Name, err)
	}
	payload, err := EncodeSelection(mask, field.Values, f.Encoding)
	if err != nil {
		return nil, nil, err
	}
	stats := &PreFilterStats{
		NumPoints:      field.Len(),
		SelectedPoints: payload.Count,
		RawBytes:       int64(4 * field.Len()),
		PayloadBytes:   int64(payload.WireSize()),
		FilterTime:     time.Since(start),
	}
	return payload, stats, nil
}

// ThresholdFromPayload reconstructs a payload and evaluates the threshold
// filter, producing exactly the cell set a full-array evaluation would.
func ThresholdFromPayload(g *grid.Uniform, p *Payload, lo, hi float64) (*contour.CellSet, error) {
	if g.NumPoints() != p.NumPoints {
		return nil, fmt.Errorf("core: payload has %d points, grid has %d",
			p.NumPoints, g.NumPoints())
	}
	vals, err := p.Reconstruct()
	if err != nil {
		return nil, err
	}
	return contour.ThresholdCells(g, vals, lo, hi)
}

// SplitContour is a convenience that runs the whole split filter locally
// (pre-filter, payload round trip, post-filter) and returns the mesh and
// the pre-filter stats. It exists for tests and for single-node
// pipelines; the distributed path lives in Server/Client.
func SplitContour(g *grid.Uniform, field *grid.Field, isovalues []float64, enc Encoding) (*contour.Mesh, *PreFilterStats, error) {
	pre := &PreFilter{Isovalues: isovalues, Encoding: enc}
	payload, stats, err := pre.Run(g, field)
	if err != nil {
		return nil, nil, err
	}
	// Round-trip through the wire format, as the RPC path would.
	decoded, err := DecodePayload(payload.Data)
	if err != nil {
		return nil, nil, err
	}
	post := &PostFilter{Isovalues: isovalues}
	mesh, err := post.Contour(g, field.Name, decoded)
	if err != nil {
		return nil, nil, err
	}
	return mesh, stats, nil
}

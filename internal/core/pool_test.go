package core

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vizndp/internal/compress"
	"vizndp/internal/grid"
	"vizndp/internal/rpc"
	"vizndp/internal/telemetry"
	"vizndp/internal/vtkio"
)

// startEchoServer runs a plain rpc server with an "echo" method.
func startEchoServer(t *testing.T) (*rpc.Server, string) {
	t.Helper()
	srv := rpc.NewServer()
	srv.Register("echo", func(_ context.Context, args []any) (any, error) {
		return args[0], nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

func TestPoolFailoverOnReplicaDeath(t *testing.T) {
	_, addrA := startEchoServer(t)
	srvB, addrB := startEchoServer(t)

	failovers := telemetry.Default().Counter("core.pool.failovers")
	trips := telemetry.Default().Counter("core.pool.breaker.open")
	f0, t0 := failovers.Value(), trips.Value()

	pool := NewPool([]string{addrA, addrB}, nil, PoolOptions{
		Reconnect: rpc.ReconnectOptions{
			Retryable:      map[string]bool{"echo": true},
			MaxAttempts:    16,
			InitialBackoff: time.Millisecond,
			MaxBackoff:     5 * time.Millisecond,
			CallTimeout:    2 * time.Second,
			Seed:           3,
		},
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Minute, // stays open for the test's duration
	})
	defer pool.Close()

	// Warm both replicas.
	for i := 0; i < 4; i++ {
		if _, err := pool.Call("echo", int64(i)); err != nil {
			t.Fatalf("warm call %d: %v", i, err)
		}
	}

	// Kill one replica mid-run: every call must still succeed, the pool
	// must fail over, and the dead replica's breaker must trip.
	srvB.Close()
	for i := 0; i < 12; i++ {
		got, err := pool.Call("echo", int64(i))
		if err != nil {
			t.Fatalf("call %d after replica death: %v", i, err)
		}
		if got != int64(i) {
			t.Fatalf("call %d = %v, want %d", i, got, i)
		}
	}
	if failovers.Value() == f0 {
		t.Error("core.pool.failovers did not count any failover")
	}
	if trips.Value() == t0 {
		t.Error("core.pool.breaker.open: dead replica's breaker never tripped")
	}
	open := 0
	for _, st := range pool.Status() {
		if st.BreakerOpen {
			open++
			if st.Addr != addrB {
				t.Errorf("breaker open on %s, want the dead replica %s", st.Addr, addrB)
			}
		}
	}
	if open != 1 {
		t.Errorf("%d breakers open, want exactly 1", open)
	}
}

func TestPoolRetriesBusyShed(t *testing.T) {
	// A single undersized replica: busy sheds must be retried even for a
	// method with no retry allowance, because the shed happened before
	// any handler ran.
	srv := rpc.NewServer(rpc.WithMaxInFlight(1))
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.Register("block", func(ctx context.Context, _ []any) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "done", nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	pool := NewPool([]string{ln.Addr().String()}, nil, PoolOptions{
		Reconnect: rpc.ReconnectOptions{
			// "block" deliberately absent from Retryable.
			MaxAttempts:    200,
			InitialBackoff: time.Millisecond,
			MaxBackoff:     5 * time.Millisecond,
			Seed:           5,
		},
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Millisecond,
	})
	defer pool.Close()

	first := make(chan error, 1)
	go func() {
		_, err := pool.Call("block")
		first <- err
	}()
	<-started

	done := make(chan error, 1)
	go func() {
		_, err := pool.Call("block")
		done <- err
	}()
	time.AfterFunc(30*time.Millisecond, func() { close(release) })
	if err := <-done; err != nil {
		t.Fatalf("shed call did not recover: %v", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("first call failed: %v", err)
	}
}

func TestBreakerFailoverProbe(t *testing.T) {
	b := &breaker{threshold: 2, cooldown: time.Minute}
	now := time.Unix(1000, 0)
	if !b.allow(now) {
		t.Fatal("new breaker must allow traffic")
	}
	if b.failure(now) {
		t.Fatal("first failure must not trip a threshold-2 breaker")
	}
	if !b.failure(now) {
		t.Fatal("second consecutive failure must trip")
	}
	if b.allow(now) {
		t.Error("open breaker allows traffic before its cooldown")
	}
	if !b.tripped(now) {
		t.Error("tripped() false right after the trip")
	}
	probeAt := now.Add(time.Minute)
	if !b.allow(probeAt) {
		t.Error("cooldown elapsed: the half-open probe must be allowed")
	}
	// A failed probe re-arms the cooldown without a fresh trip.
	if b.failure(probeAt) {
		t.Error("failed half-open probe reported a fresh trip")
	}
	if b.allow(probeAt.Add(30 * time.Second)) {
		t.Error("re-armed breaker allows traffic mid-cooldown")
	}
	// A successful probe closes the breaker entirely.
	if !b.allow(probeAt.Add(2 * time.Minute)) {
		t.Error("re-armed cooldown elapsed: probe must be allowed")
	}
	b.success()
	if !b.allow(now) || b.tripped(now) {
		t.Error("breaker not closed after a successful probe")
	}
	// And the failure streak restarts from zero.
	if b.failure(now) {
		t.Error("first failure after recovery tripped immediately")
	}
}

func TestDialPoolFailoverBitIdentical(t *testing.T) {
	g, f := sphereField(24)
	ds := grid.NewDataset(g)
	ds.MustAddField(f)
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "run"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vtkio.WriteFile(filepath.Join(dir, "run", "ts0.vnd"), ds,
		vtkio.WriteOptions{Codec: compress.None}); err != nil {
		t.Fatal(err)
	}
	newReplica := func() (*Server, string) {
		srv := NewServer(os.DirFS(dir))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(srv.Close)
		return srv, ln.Addr().String()
	}
	_, addrA := newReplica()
	srvB, addrB := newReplica()

	// Ground truth from a plain single-replica client.
	truth, err := Dial(addrA, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPayload, _, err := truth.FetchFiltered("run/ts0.vnd", "d", []float64{7}, EncAuto)
	truth.Close()
	if err != nil {
		t.Fatal(err)
	}

	client, pool := DialPool([]string{addrA, addrB}, nil, PoolOptions{
		Reconnect: rpc.ReconnectOptions{
			MaxAttempts:    16,
			InitialBackoff: time.Millisecond,
			MaxBackoff:     5 * time.Millisecond,
			CallTimeout:    5 * time.Second,
			Seed:           9,
		},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	defer client.Close()

	fetchAndCompare := func(i int) {
		t.Helper()
		p, st, err := client.FetchFiltered("run/ts0.vnd", "d", []float64{7}, EncAuto)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if string(p.Data) != string(wantPayload.Data) {
			t.Fatalf("fetch %d: payload differs from single-replica ground truth", i)
		}
		if st.Degraded {
			t.Fatalf("fetch %d: unexpectedly served degraded", i)
		}
	}
	for i := 0; i < 3; i++ {
		fetchAndCompare(i)
	}
	// Replica B dies mid-run; payloads must stay bit-identical.
	srvB.Close()
	for i := 3; i < 11; i++ {
		fetchAndCompare(i)
	}
	open := false
	for _, st := range pool.Status() {
		if st.Addr == addrB && st.BreakerOpen {
			open = true
		}
	}
	if !open {
		t.Error("dead replica's breaker is not open after the failover run")
	}
}

// startCountingEcho runs an echo server on addr ("127.0.0.1:0" for any)
// that counts the calls it actually served, for fairness accounting.
func startCountingEcho(t *testing.T, addr string) (*rpc.Server, string, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	srv := rpc.NewServer()
	srv.Register("echo", func(_ context.Context, args []any) (any, error) {
		served.Add(1)
		return args[0], nil
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String(), &served
}

// TestPoolPickFairnessUnderStorm runs a concurrent CallContext storm
// against a pool with one dead replica (breaker open) and asserts the
// two survivors share the load instead of one being starved by the
// round-robin cursor skipping the tripped replica, then restarts the
// dead replica and requires the half-open probe to fold it back in.
// Run under -race: pick, the breakers, and the cursor are all hit from
// every storm goroutine at once.
func TestPoolPickFairnessUnderStorm(t *testing.T) {
	_, addrA, servedA := startCountingEcho(t, "127.0.0.1:0")
	_, addrB, servedB := startCountingEcho(t, "127.0.0.1:0")
	srvC, addrC, _ := startCountingEcho(t, "127.0.0.1:0")

	const cooldown = 100 * time.Millisecond
	pool := NewPool([]string{addrA, addrB, addrC}, nil, PoolOptions{
		Reconnect: rpc.ReconnectOptions{
			Retryable:      map[string]bool{"echo": true},
			MaxAttempts:    32,
			InitialBackoff: time.Millisecond,
			MaxBackoff:     5 * time.Millisecond,
			CallTimeout:    2 * time.Second,
			Seed:           7,
		},
		BreakerThreshold: 2,
		BreakerCooldown:  cooldown,
	})
	defer pool.Close()

	for i := 0; i < 6; i++ {
		if _, err := pool.Call("echo", int64(i)); err != nil {
			t.Fatalf("warm call %d: %v", i, err)
		}
	}

	// Kill C, reset the survivors' counters, and storm.
	srvC.Close()
	servedA.Store(0)
	servedB.Store(0)
	const (
		workers = 8
		perW    = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := pool.CallContext(context.Background(), "echo", int64(w*perW+i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("storm call failed: %v", err)
	}

	total := servedA.Load() + servedB.Load()
	if total < workers*perW {
		t.Fatalf("survivors served %d calls, storm made %d", total, workers*perW)
	}
	// Fair share is 50/50; demand each survivor at least 25% so a cursor
	// bug that pins traffic to one replica fails loudly, while scheduling
	// noise does not.
	for name, n := range map[string]int64{"A": servedA.Load(), "B": servedB.Load()} {
		if n*4 < total {
			t.Errorf("replica %s served %d/%d calls — starved", name, n, total)
		}
	}
	openC := false
	for _, st := range pool.Status() {
		if st.Addr == addrC && st.BreakerOpen {
			openC = true
		}
	}
	if !openC {
		t.Error("dead replica's breaker is not open after the storm")
	}

	// Restart C on its old address; once the cooldown elapses, a call is
	// let through as the half-open probe and must close the breaker.
	_, _, servedC := startCountingEcho(t, addrC)
	deadline := time.Now().Add(5 * time.Second)
	for servedC.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never served a probe")
		}
		if _, err := pool.Call("echo", int64(1)); err != nil {
			t.Fatalf("call during recovery: %v", err)
		}
	}
	for _, st := range pool.Status() {
		if st.Addr == addrC && st.BreakerOpen {
			t.Error("breaker still open after a successful half-open probe")
		}
	}
}

package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vizndp/internal/bitset"
	"vizndp/internal/contour"
	"vizndp/internal/grid"
)

// randomSelection builds a mask/values pair with the given selectivity.
func randomSelection(n int, selectivity float64, seed int64) (*bitset.Bitset, []float32) {
	rng := rand.New(rand.NewSource(seed))
	mask := bitset.New(n)
	values := make([]float32, n)
	for i := range values {
		values[i] = rng.Float32()*2 - 1
		if rng.Float64() < selectivity {
			mask.Set(i)
		}
	}
	return mask, values
}

func checkRoundTrip(t *testing.T, mask *bitset.Bitset, values []float32, enc Encoding) *Payload {
	t.Helper()
	p, err := EncodeSelection(mask, values, enc)
	if err != nil {
		t.Fatalf("encode(%v): %v", enc, err)
	}
	decoded, err := DecodePayload(p.Data)
	if err != nil {
		t.Fatalf("decode(%v): %v", enc, err)
	}
	if decoded.NumPoints != mask.Len() || decoded.Count != mask.Count() {
		t.Fatalf("decoded header = %d/%d, want %d/%d",
			decoded.NumPoints, decoded.Count, mask.Len(), mask.Count())
	}
	got, err := decoded.Reconstruct()
	if err != nil {
		t.Fatalf("reconstruct(%v): %v", enc, err)
	}
	for i := range values {
		if mask.Get(i) {
			if got[i] != values[i] {
				t.Fatalf("%v: value %d = %v, want %v", enc, i, got[i], values[i])
			}
		} else if !math.IsNaN(float64(got[i])) {
			t.Fatalf("%v: unselected point %d = %v, want NaN", enc, i, got[i])
		}
	}
	return p
}

func TestPayloadRoundTripBothEncodings(t *testing.T) {
	for _, sel := range []float64{0, 0.001, 0.01, 0.2, 1.0} {
		mask, values := randomSelection(20_000, sel, 42)
		for _, enc := range []Encoding{EncIndexValue, EncBlockBitmap} {
			checkRoundTrip(t, mask, values, enc)
		}
	}
}

func TestPayloadSpecialValues(t *testing.T) {
	mask := bitset.New(8)
	values := []float32{
		0, float32(math.Inf(1)), -0, math.MaxFloat32,
		math.SmallestNonzeroFloat32, 1e-20, -5, 7,
	}
	for i := 0; i < 8; i += 2 {
		mask.Set(i)
	}
	for _, enc := range []Encoding{EncIndexValue, EncBlockBitmap} {
		checkRoundTrip(t, mask, values, enc)
	}
}

func TestPayloadTailBlock(t *testing.T) {
	// A size that is not a multiple of the 4096-point block, with bits in
	// the final partial block.
	n := 3*4096 + 100
	mask := bitset.New(n)
	values := make([]float32, n)
	for _, i := range []int{0, 4095, 4096, 8191, n - 2, n - 1} {
		mask.Set(i)
		values[i] = float32(i)
	}
	for _, enc := range []Encoding{EncIndexValue, EncBlockBitmap} {
		checkRoundTrip(t, mask, values, enc)
	}
}

func TestAutoEncodingSwitches(t *testing.T) {
	sparseMask, sparseVals := randomSelection(100_000, 0.001, 1)
	p, err := EncodeSelection(sparseMask, sparseVals, EncAuto)
	if err != nil {
		t.Fatal(err)
	}
	if p.Encoding != EncIndexValue {
		t.Errorf("sparse auto = %v, want indexvalue", p.Encoding)
	}
	denseMask, denseVals := randomSelection(100_000, 0.2, 2)
	p, err = EncodeSelection(denseMask, denseVals, EncAuto)
	if err != nil {
		t.Fatal(err)
	}
	if p.Encoding != EncBlockBitmap {
		t.Errorf("dense auto = %v, want blockbitmap", p.Encoding)
	}
}

func TestEncodingSizeTradeoff(t *testing.T) {
	// The DESIGN.md ablation claim: index/value wins at very low
	// selectivity, block bitmap wins at high selectivity.
	lowMask, lowVals := randomSelection(200_000, 0.0005, 3)
	pl, _ := EncodeSelection(lowMask, lowVals, EncIndexValue)
	pb, _ := EncodeSelection(lowMask, lowVals, EncBlockBitmap)
	if pl.WireSize() >= pb.WireSize() {
		t.Errorf("low selectivity: indexvalue %d >= blockbitmap %d",
			pl.WireSize(), pb.WireSize())
	}
	hiMask, hiVals := randomSelection(200_000, 0.3, 4)
	pl, _ = EncodeSelection(hiMask, hiVals, EncIndexValue)
	pb, _ = EncodeSelection(hiMask, hiVals, EncBlockBitmap)
	if pb.WireSize() >= pl.WireSize() {
		t.Errorf("high selectivity: blockbitmap %d >= indexvalue %d",
			pb.WireSize(), pl.WireSize())
	}
}

func TestPayloadMuchSmallerThanRaw(t *testing.T) {
	mask, values := randomSelection(1_000_000, 0.001, 5)
	p, err := EncodeSelection(mask, values, EncAuto)
	if err != nil {
		t.Fatal(err)
	}
	raw := 4 * len(values)
	if p.WireSize() > raw/50 {
		t.Errorf("payload %d bytes vs raw %d; want orders-of-magnitude smaller",
			p.WireSize(), raw)
	}
	if s := p.Selectivity(); s < 0.0005 || s > 0.002 {
		t.Errorf("selectivity = %v", s)
	}
}

func TestEncodeSelectionMismatch(t *testing.T) {
	if _, err := EncodeSelection(bitset.New(10), make([]float32, 11), EncAuto); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDecodePayloadRejectsGarbage(t *testing.T) {
	if _, err := DecodePayload(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := DecodePayload([]byte{1, 2, 3, 4}); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodePayload([]byte{payloadMagic, 99, 1, 1}); err == nil {
		t.Error("bad encoding accepted")
	}
}

func TestPayloadTruncationFuzz(t *testing.T) {
	mask, values := randomSelection(5000, 0.05, 6)
	for _, enc := range []Encoding{EncIndexValue, EncBlockBitmap} {
		p, err := EncodeSelection(mask, values, enc)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(p.Data); cut += 7 {
			trunc, err := DecodePayload(p.Data[:cut])
			if err != nil {
				continue
			}
			if _, err := trunc.Reconstruct(); err == nil &&
				trunc.Count == p.Count && cut < len(p.Data) {
				t.Fatalf("%v: truncation to %d bytes reconstructed silently", enc, cut)
			}
		}
	}
}

func TestPayloadBitFlipNoPanic(t *testing.T) {
	mask, values := randomSelection(5000, 0.05, 7)
	rng := rand.New(rand.NewSource(8))
	for _, enc := range []Encoding{EncIndexValue, EncBlockBitmap} {
		p, err := EncodeSelection(mask, values, enc)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			corrupted := bytes.Clone(p.Data)
			corrupted[rng.Intn(len(corrupted))] ^= 1 << rng.Intn(8)
			dp, err := DecodePayload(corrupted)
			if err != nil {
				continue
			}
			_, _ = dp.Reconstruct() // must not panic
		}
	}
}

func TestQuickPayloadRoundTrip(t *testing.T) {
	f := func(bits []uint16, raw []byte) bool {
		n := 1 << 14
		mask := bitset.New(n)
		values := make([]float32, n)
		for i, b := range bits {
			mask.Set(int(b) % n)
			if i < len(raw) {
				values[int(b)%n] = float32(raw[i])
			}
		}
		for _, enc := range []Encoding{EncIndexValue, EncBlockBitmap} {
			p, err := EncodeSelection(mask, values, enc)
			if err != nil {
				return false
			}
			d, err := DecodePayload(p.Data)
			if err != nil {
				return false
			}
			got, err := d.Reconstruct()
			if err != nil {
				return false
			}
			for i := range values {
				if mask.Get(i) && got[i] != values[i] {
					return false
				}
				if !mask.Get(i) && !math.IsNaN(float64(got[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// sphereDataset builds a grid and distance field for filter tests.
func sphereField(n int) (*grid.Uniform, *grid.Field) {
	g := grid.NewUniform(n, n, n)
	f := grid.NewField("d", g.NumPoints())
	c := float64(n-1) / 2
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				dx, dy, dz := float64(i)-c, float64(j)-c, float64(k)-c
				f.Values[g.PointIndex(i, j, k)] = float32(math.Sqrt(dx*dx + dy*dy + dz*dz))
			}
		}
	}
	return g, f
}

func TestSplitContourMatchesFull(t *testing.T) {
	g, f := sphereField(28)
	isos := []float64{6, 9.5}
	full, err := contour.MarchingTetrahedra(g, f.Values, isos)
	if err != nil {
		t.Fatal(err)
	}
	for _, enc := range []Encoding{EncIndexValue, EncBlockBitmap, EncAuto} {
		mesh, stats, err := SplitContour(g, f, isos, enc)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		if !mesh.Equal(full) {
			t.Errorf("%v: split contour differs from full contour", enc)
		}
		if stats.SelectedPoints == 0 || stats.SelectedPoints == stats.NumPoints {
			t.Errorf("%v: selected %d/%d", enc, stats.SelectedPoints, stats.NumPoints)
		}
		// On this small 28^3 grid the two shells cover a sizeable
		// fraction; just require a real reduction (large grids are
		// exercised in TestPayloadMuchSmallerThanRaw and the benches).
		if stats.Reduction() < 2 {
			t.Errorf("%v: reduction = %.1f, want > 2", enc, stats.Reduction())
		}
	}
}

func TestPreFilterNoIsovalues(t *testing.T) {
	g, f := sphereField(8)
	pre := &PreFilter{}
	if _, _, err := pre.Run(g, f); err == nil {
		t.Error("no isovalues accepted")
	}
}

func TestPostFilterGridMismatch(t *testing.T) {
	g, f := sphereField(8)
	pre := &PreFilter{Isovalues: []float64{2}}
	payload, _, err := pre.Run(g, f)
	if err != nil {
		t.Fatal(err)
	}
	post := &PostFilter{Isovalues: []float64{2}}
	wrong := grid.NewUniform(4, 4, 4)
	if _, err := post.Contour(wrong, "d", payload); err == nil {
		t.Error("grid size mismatch accepted")
	}
}

func TestPreFilterStatsAccounting(t *testing.T) {
	g, f := sphereField(20)
	pre := &PreFilter{Isovalues: []float64{6}}
	payload, stats, err := pre.Run(g, f)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumPoints != g.NumPoints() {
		t.Errorf("NumPoints = %d", stats.NumPoints)
	}
	if stats.PayloadBytes != int64(payload.WireSize()) {
		t.Errorf("PayloadBytes = %d, wire = %d", stats.PayloadBytes, payload.WireSize())
	}
	if stats.RawBytes != int64(4*g.NumPoints()) {
		t.Errorf("RawBytes = %d", stats.RawBytes)
	}
	if stats.Selectivity() <= 0 || stats.Selectivity() >= 1 {
		t.Errorf("Selectivity = %v", stats.Selectivity())
	}
}

func TestEncodingStringParse(t *testing.T) {
	for _, enc := range []Encoding{EncAuto, EncIndexValue, EncBlockBitmap} {
		got, err := ParseEncoding(enc.String())
		if err != nil || got != enc {
			t.Errorf("ParseEncoding(%v.String()) = %v, %v", enc, got, err)
		}
	}
	if _, err := ParseEncoding("bogus"); err == nil {
		t.Error("bogus encoding accepted")
	}
	if (Encoding(77)).String() == "" {
		t.Error("unknown encoding has empty name")
	}
}

func BenchmarkPreFilter(b *testing.B) {
	g, f := sphereField(64)
	pre := &PreFilter{Isovalues: []float64{20}}
	b.SetBytes(int64(4 * g.NumPoints()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := pre.Run(g, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	g, f := sphereField(64)
	pre := &PreFilter{Isovalues: []float64{20}}
	payload, _, err := pre.Run(g, f)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * g.NumPoints()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := payload.Reconstruct(); err != nil {
			b.Fatal(err)
		}
	}
}

// Package bitset provides a dense bitmap used to mark selected grid
// points. The NDP pre-filter produces one bit per mesh point; the block
// bitmap payload encoding ships runs of these bits over the wire.
package bitset

import (
	"fmt"
	"math/bits"
)

// Bitset is a fixed-size bitmap.
type Bitset struct {
	n     int
	words []uint64
}

// New returns a bitmap of n bits, all clear.
func New(n int) *Bitset {
	if n < 0 {
		// vizlint:ignore nopanic caller bug, not request data: sizes come from validated grid dims
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the bitmap's size in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (i & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (i & 63) }

// Get reports bit i.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Or merges o into b. Both must have the same length.
func (b *Bitset) Or(o *Bitset) {
	if b.n != o.n {
		// vizlint:ignore nopanic invariant: both bitmaps derive from the same grid's point count
		panic(fmt.Sprintf("bitset: size mismatch %d != %d", b.n, o.n))
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// Words exposes the underlying words (read-only use).
func (b *Bitset) Words() []uint64 { return b.words }

// ForEach calls fn with each set bit index in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi<<6 + bit)
			w &= w - 1
		}
	}
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return &Bitset{n: b.n, words: words}
}

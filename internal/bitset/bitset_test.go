package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130) // crosses two word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Errorf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Errorf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 7 {
		t.Errorf("Clear failed: get=%v count=%d", b.Get(64), b.Count())
	}
}

func TestLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		if got := New(n).Len(); got != n {
			t.Errorf("Len(%d) = %d", n, got)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(-1)
}

func TestOr(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(3)
	b.Set(97)
	b.Set(3)
	a.Or(b)
	if !a.Get(3) || !a.Get(97) || a.Count() != 2 {
		t.Errorf("Or result wrong: count=%d", a.Count())
	}
}

func TestOrSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(10).Or(New(11))
}

func TestForEachOrder(t *testing.T) {
	b := New(200)
	want := []int{0, 5, 63, 64, 120, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ForEach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestClone(t *testing.T) {
	a := New(70)
	a.Set(69)
	c := a.Clone()
	c.Set(1)
	if a.Get(1) {
		t.Error("clone aliases original")
	}
	if !c.Get(69) {
		t.Error("clone lost bits")
	}
}

func TestQuickCountMatchesReference(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := New(1 << 16)
		ref := make(map[int]bool)
		for _, i := range idxs {
			b.Set(int(i))
			ref[int(i)] = true
		}
		if b.Count() != len(ref) {
			return false
		}
		ok := true
		b.ForEach(func(i int) {
			if !ref[i] {
				ok = false
			}
			delete(ref, i)
		})
		return ok && len(ref) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCount(b *testing.B) {
	bs := New(1 << 20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<14; i++ {
		bs.Set(rng.Intn(1 << 20))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bs.Count()
	}
}

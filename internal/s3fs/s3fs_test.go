package s3fs

import (
	"bytes"
	"io"
	"io/fs"
	"math/rand"
	"net/http/httptest"
	"sort"
	"testing"

	"vizndp/internal/compress"
	"vizndp/internal/grid"
	"vizndp/internal/objstore"
	"vizndp/internal/vtkio"
)

func startFS(t *testing.T) (*FS, *objstore.Client) {
	t.Helper()
	s, err := objstore.NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	c := objstore.NewClient(ts.Listener.Addr().String(), nil)
	return New(c, "sim"), c
}

func TestReadWholeFile(t *testing.T) {
	fsys, c := startFS(t)
	data := make([]byte, 3_000_000) // > 2 read-ahead windows
	rand.New(rand.NewSource(1)).Read(data)
	if err := c.Put("sim", "big.bin", data); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("sequential read mismatch")
	}
}

func TestSmallChunkReads(t *testing.T) {
	fsys, c := startFS(t)
	fsys.ChunkSize = 64
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.Put("sim", "f", data); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("chunked read failed: %v", err)
	}
}

func TestStat(t *testing.T) {
	fsys, c := startFS(t)
	if err := c.Put("sim", "dir/name.vnd", make([]byte, 77)); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open("dir/name.vnd")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if fi.Name() != "name.vnd" || fi.Size() != 77 || fi.IsDir() {
		t.Errorf("Stat = %v/%d/%v", fi.Name(), fi.Size(), fi.IsDir())
	}
}

func TestOpenMissing(t *testing.T) {
	fsys, _ := startFS(t)
	if _, err := fsys.Open("nope"); err == nil {
		t.Error("missing object opened")
	}
	var perr *fs.PathError
	_, err := fsys.Open("nope")
	if !asPathError(err, &perr) {
		t.Errorf("err type = %T", err)
	}
}

func asPathError(err error, out **fs.PathError) bool {
	pe, ok := err.(*fs.PathError)
	if ok {
		*out = pe
	}
	return ok
}

func TestOpenInvalidPath(t *testing.T) {
	fsys, _ := startFS(t)
	for _, name := range []string{"/abs", "../up", ".", ""} {
		if _, err := fsys.Open(name); err == nil {
			t.Errorf("invalid path %q opened", name)
		}
	}
}

func TestSeekAndReadAt(t *testing.T) {
	fsys, c := startFS(t)
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(3)).Read(data)
	if err := c.Put("sim", "f", data); err != nil {
		t.Fatal(err)
	}
	file, err := fsys.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	f := file.(*File)

	if pos, err := f.Seek(5000, io.SeekStart); err != nil || pos != 5000 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	buf := make([]byte, 100)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[5000:5100]) {
		t.Error("read after seek mismatch")
	}

	if pos, err := f.Seek(-100, io.SeekEnd); err != nil || pos != 9900 {
		t.Fatalf("SeekEnd = %d, %v", pos, err)
	}
	if pos, err := f.Seek(10, io.SeekCurrent); err != nil || pos != 9910 {
		t.Fatalf("SeekCurrent = %d, %v", pos, err)
	}
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Error("negative seek accepted")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Error("bad whence accepted")
	}

	if _, err := f.ReadAt(buf, 2000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[2000:2100]) {
		t.Error("ReadAt mismatch")
	}
	n, err := f.ReadAt(buf, 9950)
	if n != 50 || err != io.EOF {
		t.Errorf("ReadAt at EOF = %d, %v", n, err)
	}
}

func TestReadAfterClose(t *testing.T) {
	fsys, c := startFS(t)
	if err := c.Put("sim", "f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f, _ := fsys.Open("f")
	f.Close()
	buf := make([]byte, 1)
	if _, err := f.Read(buf); err != fs.ErrClosed {
		t.Errorf("Read after close = %v", err)
	}
	if _, err := f.Stat(); err != fs.ErrClosed {
		t.Errorf("Stat after close = %v", err)
	}
}

func TestReadDir(t *testing.T) {
	fsys, c := startFS(t)
	for _, k := range []string{"ts0/v02.vnd", "ts0/v03.vnd", "ts1/v02.vnd", "top.vnd"} {
		if err := c.Put("sim", k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := fsys.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	dirs := map[string]bool{}
	for i, e := range entries {
		names[i] = e.Name()
		dirs[e.Name()] = e.IsDir()
	}
	sort.Strings(names)
	want := []string{"top.vnd", "ts0", "ts1"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("root entries = %v", names)
	}
	if !dirs["ts0"] || dirs["top.vnd"] {
		t.Errorf("dir flags wrong: %v", dirs)
	}

	sub, err := fsys.ReadDir("ts0")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 {
		t.Errorf("ts0 entries = %d", len(sub))
	}
}

func TestVTKIOOverS3FS(t *testing.T) {
	// The baseline data path: a dataset stored as an object, opened
	// through the filesystem layer, selectively read by vtkio.
	fsys, c := startFS(t)

	g := grid.NewUniform(16, 16, 16)
	ds := grid.NewDataset(g)
	rng := rand.New(rand.NewSource(5))
	for _, name := range []string{"v02", "v03"} {
		f := grid.NewField(name, g.NumPoints())
		for i := range f.Values {
			f.Values[i] = rng.Float32()
		}
		ds.MustAddField(f)
	}
	var buf bytes.Buffer
	if err := vtkio.Write(&buf, ds, vtkio.WriteOptions{Codec: compress.LZ4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("sim", "ts0.vnd", buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	file, err := fsys.Open("ts0.vnd")
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	r, err := vtkio.OpenReader(file.(*File))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadArray("v03")
	if err != nil {
		t.Fatal(err)
	}
	want := ds.Field("v03").Values
	for i := range want {
		if got.Values[i] != want[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
}

func TestFileInfoAccessors(t *testing.T) {
	fsys, c := startFS(t)
	if err := c.Put("sim", "f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.(*File).Size() != 3 {
		t.Error("Size wrong")
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode() != 0o444 || fi.IsDir() || fi.Sys() != nil || !fi.ModTime().IsZero() {
		t.Error("fileInfo accessors wrong")
	}
	entries, err := fsys.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "f" {
			if e.IsDir() || e.Type() != 0 {
				t.Error("entry flags wrong")
			}
			info, err := e.Info()
			if err != nil || info.Size() != 3 {
				t.Errorf("entry info = %v, %v", info, err)
			}
		}
	}
	if _, err := fsys.ReadDir("../bad"); err == nil {
		t.Error("invalid readdir path accepted")
	}
}

func TestStatFS(t *testing.T) {
	fsys, c := startFS(t)
	if err := c.Put("sim", "dir/obj.bin", make([]byte, 1234)); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat(fsys, "dir/obj.bin")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 1234 || info.Name() != "obj.bin" || info.IsDir() {
		t.Errorf("stat = %v/%d/%v", info.Name(), info.Size(), info.IsDir())
	}
	if _, err := fs.Stat(fsys, "missing"); err == nil {
		t.Error("stat of missing object succeeded")
	}
	if _, err := fsys.Stat("../bad"); err == nil {
		t.Error("stat of invalid path succeeded")
	}
}

// Package s3fs presents an object-store bucket as a read-only filesystem,
// standing in for the FUSE-based s3fs tool the paper uses to mount MinIO
// buckets on the client (baseline) or storage (NDP) node.
//
// Files support sequential reads with read-ahead buffering — mirroring how
// a FUSE mount turns stream reads into ranged object GETs — as well as
// random access through io.ReaderAt and io.Seeker, which the vtkio reader
// uses to fetch only selected arrays.
package s3fs

import (
	"fmt"
	"io"
	"io/fs"
	"path"
	"time"

	"vizndp/internal/objstore"
)

// DefaultChunkSize is the read-ahead window for sequential reads.
const DefaultChunkSize = 1 << 20

// FS is a read-only fs.FS over one bucket.
type FS struct {
	client *objstore.Client
	bucket string
	// ChunkSize is the read-ahead window; DefaultChunkSize if 0.
	ChunkSize int
}

// New returns a filesystem view of bucket served by client.
func New(client *objstore.Client, bucket string) *FS {
	return &FS{client: client, bucket: bucket}
}

// Open opens the named object. The returned file is an fs.File that also
// implements io.ReaderAt and io.Seeker.
func (f *FS) Open(name string) (fs.File, error) {
	if !fs.ValidPath(name) || name == "." {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	size, err := f.client.Stat(f.bucket, name)
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	chunk := f.ChunkSize
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	return &File{
		client: f.client,
		bucket: f.bucket,
		key:    name,
		size:   size,
		chunk:  chunk,
	}, nil
}

// Stat implements fs.StatFS with a single object stat, so callers
// probing file versions (e.g. the NDP server's array-cache keys) avoid
// constructing a file handle. The object store reports no modification
// time, so ModTime is the zero time and change detection rides on size.
func (f *FS) Stat(name string) (fs.FileInfo, error) {
	if !fs.ValidPath(name) || name == "." {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrInvalid}
	}
	size, err := f.client.Stat(f.bucket, name)
	if err != nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: err}
	}
	return fileInfo{name: path.Base(name), size: size}, nil
}

var _ fs.StatFS = (*FS)(nil)

// ReadDir lists the objects under the given prefix directory, satisfying
// the common pattern of scanning a timestep directory.
func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	prefix := ""
	if name != "." {
		if !fs.ValidPath(name) {
			return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrInvalid}
		}
		prefix = name + "/"
	}
	objs, err := f.client.List(f.bucket, prefix)
	if err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	entries := make([]fs.DirEntry, 0, len(objs))
	seen := make(map[string]bool)
	for _, o := range objs {
		rest := o.Key[len(prefix):]
		first, _, isDir := cutSlash(rest)
		if seen[first] {
			continue
		}
		seen[first] = true
		entries = append(entries, dirEntry{
			name:  first,
			size:  o.Size,
			isDir: isDir,
		})
	}
	return entries, nil
}

func cutSlash(s string) (first, rest string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// File is an open object handle.
type File struct {
	client *objstore.Client
	bucket string
	key    string
	size   int64
	chunk  int

	offset int64  // current Read/Seek position
	buf    []byte // read-ahead window
	bufOff int64  // object offset of buf[0]
	closed bool
}

var (
	_ fs.File     = (*File)(nil)
	_ io.ReaderAt = (*File)(nil)
	_ io.Seeker   = (*File)(nil)
)

// Stat implements fs.File.
func (f *File) Stat() (fs.FileInfo, error) {
	if f.closed {
		return nil, fs.ErrClosed
	}
	return fileInfo{name: path.Base(f.key), size: f.size}, nil
}

// Size returns the object size in bytes.
func (f *File) Size() int64 { return f.size }

// Read implements sequential reads with read-ahead: a miss fetches the
// next ChunkSize window in one ranged GET.
func (f *File) Read(p []byte) (int, error) {
	if f.closed {
		return 0, fs.ErrClosed
	}
	if f.offset >= f.size {
		return 0, io.EOF
	}
	// Serve from the buffered window when possible.
	if f.offset >= f.bufOff && f.offset < f.bufOff+int64(len(f.buf)) {
		n := copy(p, f.buf[f.offset-f.bufOff:])
		f.offset += int64(n)
		return n, nil
	}
	// Miss: fetch a fresh window at the current offset.
	want := int64(f.chunk)
	if f.offset+want > f.size {
		want = f.size - f.offset
	}
	data, err := f.client.GetRange(f.bucket, f.key, f.offset, want)
	if err != nil {
		return 0, fmt.Errorf("s3fs: read %s at %d: %w", f.key, f.offset, err)
	}
	if len(data) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	f.buf = data
	f.bufOff = f.offset
	n := copy(p, data)
	f.offset += int64(n)
	return n, nil
}

// ReadAt implements io.ReaderAt with a direct ranged GET, bypassing the
// read-ahead buffer.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, fs.ErrClosed
	}
	if off >= f.size {
		return 0, io.EOF
	}
	n := int64(len(p))
	short := false
	if off+n > f.size {
		n = f.size - off
		short = true
	}
	data, err := f.client.GetRange(f.bucket, f.key, off, n)
	if err != nil {
		return 0, err
	}
	copied := copy(p, data)
	if int64(copied) < n {
		return copied, io.ErrUnexpectedEOF
	}
	if short {
		return copied, io.EOF
	}
	return copied, nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, fs.ErrClosed
	}
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = f.offset + offset
	case io.SeekEnd:
		abs = f.size + offset
	default:
		return 0, fmt.Errorf("s3fs: invalid whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("s3fs: negative seek position %d", abs)
	}
	f.offset = abs
	return abs, nil
}

// Close releases the handle.
func (f *File) Close() error {
	f.closed = true
	f.buf = nil
	return nil
}

type fileInfo struct {
	name string
	size int64
}

func (fi fileInfo) Name() string       { return fi.name }
func (fi fileInfo) Size() int64        { return fi.size }
func (fi fileInfo) Mode() fs.FileMode  { return 0o444 }
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return false }
func (fi fileInfo) Sys() any           { return nil }

type dirEntry struct {
	name  string
	size  int64
	isDir bool
}

func (d dirEntry) Name() string { return d.name }
func (d dirEntry) IsDir() bool  { return d.isDir }
func (d dirEntry) Type() fs.FileMode {
	if d.isDir {
		return fs.ModeDir
	}
	return 0
}
func (d dirEntry) Info() (fs.FileInfo, error) {
	return fileInfo{name: d.name, size: d.size}, nil
}

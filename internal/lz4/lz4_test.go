package lz4

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	comp := Compress(src)
	got, err := Decompress(comp, len(src))
	if err != nil {
		t.Fatalf("decompress(%d bytes -> %d): %v", len(src), len(comp), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(got))
	}
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, nil)
	if got := Compress(nil); len(got) != 0 {
		t.Errorf("empty input should compress to empty block, got %d bytes", len(got))
	}
}

func TestRoundTripTiny(t *testing.T) {
	for n := 1; n <= 32; n++ {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i)
		}
		roundTrip(t, buf)
	}
}

func TestRoundTripRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte("abcd"), 10_000)
	comp := Compress(src)
	if len(comp) >= len(src)/10 {
		t.Errorf("repetitive data compressed to %d/%d bytes; expected >10x", len(comp), len(src))
	}
	roundTrip(t, src)
}

func TestRoundTripAllZero(t *testing.T) {
	src := make([]byte, 1<<20)
	comp := Compress(src)
	if len(comp) > 5000 {
		t.Errorf("1 MiB of zeros compressed to %d bytes", len(comp))
	}
	roundTrip(t, src)
}

func TestRoundTripIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := make([]byte, 100_000)
	rng.Read(src)
	comp := Compress(src)
	if len(comp) > CompressBound(len(src)) {
		t.Errorf("compressed %d exceeds bound %d", len(comp), CompressBound(len(src)))
	}
	roundTrip(t, src)
}

func TestRoundTripText(t *testing.T) {
	src := []byte(strings.Repeat(
		"the quick brown fox jumps over the lazy dog; ", 500))
	roundTrip(t, src)
}

func TestRoundTripLongMatches(t *testing.T) {
	// Exercise match-length extension bytes (>15+4 and multiples of 255).
	for _, n := range []int{19, 20, 270, 273, 274, 529, 10_000} {
		src := append([]byte("0123456789abcdef"), bytes.Repeat([]byte{'Q'}, n)...)
		src = append(src, "tail-literals"...)
		roundTrip(t, src)
	}
}

func TestRoundTripLongLiterals(t *testing.T) {
	// Exercise literal-length extension bytes: random (incompressible)
	// prefixes of awkward lengths followed by compressible data.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{14, 15, 16, 269, 270, 271, 524, 525} {
		lit := make([]byte, n)
		rng.Read(lit)
		src := append(lit, bytes.Repeat([]byte("xyzw"), 100)...)
		roundTrip(t, src)
	}
}

func TestRoundTripFarOffsets(t *testing.T) {
	// Repetition period just inside and outside the 64 KiB window.
	unit := make([]byte, 60_000)
	rng := rand.New(rand.NewSource(3))
	rng.Read(unit)
	src := append(append([]byte{}, unit...), unit...)
	roundTrip(t, src)

	unit = make([]byte, 70_000) // beyond window: matches impossible
	rng.Read(unit)
	src = append(append([]byte{}, unit...), unit...)
	roundTrip(t, src)
}

func TestRoundTripFloat32Pattern(t *testing.T) {
	// Shape of the actual workload: little-endian float32 fields with long
	// runs of equal values (e.g. v02 == 0 outside the water).
	src := make([]byte, 0, 40_000)
	for i := 0; i < 10_000; i++ {
		var v uint32
		if i%100 < 3 {
			v = 0x3f800000 // 1.0
		}
		src = append(src, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	comp := Compress(src)
	if len(comp) >= len(src)/2 {
		t.Errorf("field-like data compressed to %d/%d", len(comp), len(src))
	}
	roundTrip(t, src)
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		comp := Compress(data)
		got, err := Decompress(comp, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripStructured(t *testing.T) {
	// Random data rarely has matches; synthesize structured inputs by
	// repeating random chunks so the compressor's match path is exercised.
	f := func(chunk []byte, repeat uint8) bool {
		if len(chunk) == 0 {
			return true
		}
		src := bytes.Repeat(chunk, int(repeat%32)+2)
		comp := Compress(src)
		got, err := Decompress(comp, len(src))
		return err == nil && bytes.Equal(got, src)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	src := bytes.Repeat([]byte("hello world "), 100)
	comp := Compress(src)

	// Truncations at every prefix length must error, never panic.
	for i := 0; i < len(comp); i++ {
		if _, err := Decompress(comp[:i], len(src)); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	// Wrong declared size.
	if _, err := Decompress(comp, len(src)-1); err == nil {
		t.Error("short declared size accepted")
	}
	if _, err := Decompress(comp, len(src)+1); err == nil {
		t.Error("long declared size accepted")
	}
	if _, err := Decompress(comp, -1); err == nil {
		t.Error("negative size accepted")
	}
	// Empty block with nonzero size.
	if _, err := Decompress(nil, 4); err == nil {
		t.Error("empty block with nonzero size accepted")
	}
	// Nonempty block with zero size.
	if _, err := Decompress([]byte{0x00}, 0); err == nil {
		t.Error("nonempty block with zero size accepted")
	}
}

func TestDecompressRejectsBadOffset(t *testing.T) {
	// Hand-built block: 4 literals then a match with offset 9 (> output so far).
	block := []byte{
		0x40, 'a', 'b', 'c', 'd', // token: 4 literals, match len 4
		0x09, 0x00, // offset 9, invalid
		0x00, // final empty-literal token would follow; unreachable
	}
	if _, err := Decompress(block, 8); err == nil {
		t.Error("offset beyond output accepted")
	}
	// Offset 0 is always invalid.
	block[5], block[6] = 0x00, 0x00
	if _, err := Decompress(block, 8); err == nil {
		t.Error("zero offset accepted")
	}
}

func TestDecompressFuzzRandomInput(t *testing.T) {
	// Random garbage must never panic; errors are fine.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		size := rng.Intn(256)
		_, _ = Decompress(buf, size) // must not panic
	}
}

func TestCompressBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 100, 1000, 65536} {
		buf := make([]byte, n)
		rng.Read(buf)
		if got := len(Compress(buf)); got > CompressBound(n) {
			t.Errorf("n=%d: compressed %d > bound %d", n, got, CompressBound(n))
		}
	}
}

func TestAppendCompressedAppends(t *testing.T) {
	prefix := []byte("PREFIX")
	src := bytes.Repeat([]byte("data"), 50)
	out := AppendCompressed(append([]byte{}, prefix...), src)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("prefix clobbered")
	}
	got, err := Decompress(out[len(prefix):], len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("append round trip failed: %v", err)
	}
}

func BenchmarkCompressField(b *testing.B) {
	// 1 MiB of field-like float32 data, moderately compressible.
	src := make([]byte, 1<<20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < len(src); i += 4 {
		if rng.Float32() < 0.1 {
			src[i] = byte(rng.Intn(256))
		}
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compress(src)
	}
}

func BenchmarkDecompressField(b *testing.B) {
	src := make([]byte, 1<<20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < len(src); i += 4 {
		if rng.Float32() < 0.1 {
			src[i] = byte(rng.Intn(256))
		}
	}
	comp := Compress(src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, len(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// Package lz4 implements the LZ4 block format (compression and
// decompression) using only the standard library.
//
// The paper evaluates LZ4 because VTK supports it natively and its cheap
// decompression makes it the better choice than GZip once network transfer
// stops dominating. Since this reproduction is stdlib-only, the block
// format — token byte with literal/match length nibbles, little-endian
// 16-bit match offsets, 255-terminated length extensions — is implemented
// from scratch. The compressor is the greedy single-probe hash-chain
// variant used by the LZ4 "fast" reference implementation; output is valid
// LZ4 block data decodable by any conforming decoder.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch     = 4  // smallest encodable match
	mfLimit      = 12 // matches must start at least this far from the end
	lastLiterals = 5  // the final 5 bytes must be literals
	maxOffset    = 65535
	hashLog      = 16
	hashShift    = 32 - hashLog
)

// ErrCorrupt is returned by Decompress when the input is not a valid LZ4
// block or would overflow the declared decompressed size.
var ErrCorrupt = errors.New("lz4: corrupt block")

func hash4(v uint32) uint32 {
	// Fibonacci hashing constant used by the reference implementation.
	return (v * 2654435761) >> hashShift
}

// CompressBound returns the maximum compressed size for an input of n
// bytes, mirroring LZ4_compressBound.
func CompressBound(n int) int {
	return n + n/255 + 16
}

// Compress compresses src as a single LZ4 block and returns the block.
// An empty src yields an empty block.
func Compress(src []byte) []byte {
	return AppendCompressed(nil, src)
}

// AppendCompressed appends the LZ4 block encoding of src to dst and returns
// the extended slice.
func AppendCompressed(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	var table [1 << hashLog]int32 // position+1 of most recent 4-byte hash

	anchor := 0
	pos := 0
	// Matches may only start while at least mfLimit bytes remain.
	matchableEnd := len(src) - mfLimit
	// Matches may extend up to the last-literals boundary.
	extendEnd := len(src) - lastLiterals

	for pos < matchableEnd {
		cur := binary.LittleEndian.Uint32(src[pos:])
		h := hash4(cur)
		cand := int(table[h]) - 1
		table[h] = int32(pos + 1)
		if cand < 0 || pos-cand > maxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != cur {
			pos++
			continue
		}
		// Extend the match forward.
		matchLen := minMatch
		for pos+matchLen < extendEnd && src[cand+matchLen] == src[pos+matchLen] {
			matchLen++
		}
		// Extend backward into pending literals.
		for pos > anchor && cand > 0 && src[pos-1] == src[cand-1] {
			pos--
			cand--
			matchLen++
		}
		dst = appendSequence(dst, src[anchor:pos], pos-cand, matchLen)
		pos += matchLen
		anchor = pos
	}
	// Final literal-only sequence.
	return appendSequence(dst, src[anchor:], 0, 0)
}

// appendSequence appends one LZ4 sequence. A matchLen of 0 emits the final
// literals-only sequence (no offset field).
func appendSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	var token byte
	if litLen >= 15 {
		token = 0xF0
	} else {
		token = byte(litLen) << 4
	}
	ml := 0
	if matchLen > 0 {
		ml = matchLen - minMatch
		if ml >= 15 {
			token |= 0x0F
		} else {
			token |= byte(ml)
		}
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	dst = append(dst, literals...)
	if matchLen > 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if ml >= 15 {
			dst = appendLenExt(dst, ml-15)
		}
	}
	return dst
}

func appendLenExt(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// Decompress decodes the LZ4 block src into a new slice of exactly
// decompressedSize bytes. It returns ErrCorrupt (wrapped with detail) if
// the block is malformed or does not decode to exactly that size.
func Decompress(src []byte, decompressedSize int) ([]byte, error) {
	if decompressedSize < 0 {
		return nil, fmt.Errorf("%w: negative size", ErrCorrupt)
	}
	dst := make([]byte, 0, decompressedSize)
	if decompressedSize == 0 {
		if len(src) != 0 {
			return nil, fmt.Errorf("%w: trailing data in empty block", ErrCorrupt)
		}
		return dst, nil
	}
	i := 0
	for {
		if i >= len(src) {
			return nil, fmt.Errorf("%w: truncated at token", ErrCorrupt)
		}
		token := src[i]
		i++
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			n, ni, err := readLenExt(src, i)
			if err != nil {
				return nil, err
			}
			litLen += n
			i = ni
		}
		if i+litLen > len(src) {
			return nil, fmt.Errorf("%w: literal run overruns input", ErrCorrupt)
		}
		if len(dst)+litLen > decompressedSize {
			return nil, fmt.Errorf("%w: output overflow in literals", ErrCorrupt)
		}
		dst = append(dst, src[i:i+litLen]...)
		i += litLen
		if i == len(src) {
			// End of block: final sequence carries literals only.
			if len(dst) != decompressedSize {
				return nil, fmt.Errorf("%w: decoded %d bytes, want %d",
					ErrCorrupt, len(dst), decompressedSize)
			}
			return dst, nil
		}
		// Match.
		if i+2 > len(src) {
			return nil, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		if offset == 0 || offset > len(dst) {
			return nil, fmt.Errorf("%w: bad offset %d at output %d",
				ErrCorrupt, offset, len(dst))
		}
		matchLen := int(token & 0x0F)
		if matchLen == 15 {
			n, ni, err := readLenExt(src, i)
			if err != nil {
				return nil, err
			}
			matchLen += n
			i = ni
		}
		matchLen += minMatch
		if len(dst)+matchLen > decompressedSize {
			return nil, fmt.Errorf("%w: output overflow in match", ErrCorrupt)
		}
		// Overlapping copy must proceed byte-wise.
		start := len(dst) - offset
		for j := 0; j < matchLen; j++ {
			dst = append(dst, dst[start+j])
		}
	}
}

func readLenExt(src []byte, i int) (n, next int, err error) {
	for {
		if i >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
		}
		b := src[i]
		i++
		n += int(b)
		if b != 255 {
			return n, i, nil
		}
	}
}

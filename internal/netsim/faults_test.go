package netsim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestFaultDialRefusalSchedule(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	link := Unlimited()
	f := &Faults{RefuseDialEvery: 2}
	link.SetFaults(f)
	for i := 1; i <= 4; i++ {
		c, err := link.Dial("tcp", ln.Addr().String())
		if i%2 == 0 {
			if !errors.Is(err, ErrDialRefused) {
				t.Errorf("dial %d: err = %v, want ErrDialRefused", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		c.Close()
	}
	if got := f.Stats().DialsRefused; got != 2 {
		t.Errorf("DialsRefused = %d, want 2", got)
	}
}

func TestFaultConnKillTruncatesMidFrame(t *testing.T) {
	link := Unlimited()
	f := &Faults{KillConnEvery: 1, KillAfterBytes: 1000}
	link.SetFaults(f)
	client, server := link.Pipe()
	defer client.Close()

	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(client)
		got <- b
	}()
	n, err := server.Write(make([]byte, 4096))
	if !errors.Is(err, ErrConnKilled) {
		t.Fatalf("write err = %v, want ErrConnKilled", err)
	}
	if n != 1000 {
		t.Errorf("write admitted %d bytes, want exactly the 1000-byte budget", n)
	}
	// The peer sees the truncated prefix, then EOF — exactly the wire
	// state a crashed storage node leaves behind.
	select {
	case b := <-got:
		if len(b) != 1000 {
			t.Errorf("peer read %d bytes, want 1000", len(b))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer read did not complete")
	}
	// The connection stays dead for later writes without recounting.
	if _, err := server.Write([]byte{1}); !errors.Is(err, ErrConnKilled) {
		t.Errorf("write on dead conn = %v, want ErrConnKilled", err)
	}
	st := f.Stats()
	if st.ConnsKilled != 1 {
		t.Errorf("ConnsKilled = %d, want 1", st.ConnsKilled)
	}
	if st.FramesTruncated != 1 {
		t.Errorf("FramesTruncated = %d, want 1", st.FramesTruncated)
	}
}

func TestFaultKillTargetsAcceptedSideOnly(t *testing.T) {
	link := Unlimited()
	link.SetFaults(&Faults{KillConnEvery: 1, KillAfterBytes: 100})
	client, server := link.Pipe()
	defer client.Close()
	defer server.Close()

	done := make(chan int, 1)
	go func() {
		n, _ := io.ReadFull(server, make([]byte, 4096))
		done <- n
	}()
	// The dialer side carries requests, not payloads; its writes are
	// never budget-killed.
	if _, err := client.Write(make([]byte, 4096)); err != nil {
		t.Fatalf("dialer-side write = %v, want nil", err)
	}
	select {
	case n := <-done:
		if n != 4096 {
			t.Errorf("server read %d bytes, want 4096", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server read did not complete")
	}
}

func TestFaultKillAfterTime(t *testing.T) {
	link := Unlimited()
	f := &Faults{KillAfterTime: 20 * time.Millisecond}
	link.SetFaults(f)
	client, server := link.Pipe()
	defer client.Close()

	go io.Copy(io.Discard, client)
	time.Sleep(50 * time.Millisecond)
	if _, err := server.Write([]byte("late")); !errors.Is(err, ErrConnKilled) {
		t.Fatalf("write after lifetime = %v, want ErrConnKilled", err)
	}
	if got := f.Stats().ConnsKilled; got != 1 {
		t.Errorf("ConnsKilled = %d, want 1", got)
	}
}

func TestFaultLatencySpikes(t *testing.T) {
	link := Unlimited()
	f := &Faults{SpikeEvery: 1, SpikeLatency: 30 * time.Millisecond}
	link.SetFaults(f)
	client, server := link.Pipe()
	defer client.Close()
	defer server.Close()

	go io.Copy(io.Discard, client)
	start := time.Now()
	if _, err := server.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("spiked write took %v, want >= ~30ms", elapsed)
	}
	if got := f.Stats().LatencySpikes; got != 1 {
		t.Errorf("LatencySpikes = %d, want 1", got)
	}
}

func TestFaultBudgetJitterDeterministic(t *testing.T) {
	budgets := func(seed int64) []int64 {
		f := &Faults{
			Seed:           seed,
			KillConnEvery:  1,
			KillAfterBytes: 1000,
			JitterBytes:    500,
		}
		out := make([]int64, 8)
		for i := range out {
			cf := f.newConnFaults()
			if !cf.armed {
				t.Fatalf("connection %d not armed with KillConnEvery=1", i+1)
			}
			if cf.budget < 1000 || cf.budget > 1500 {
				t.Fatalf("budget %d outside [1000, 1500]", cf.budget)
			}
			out[i] = cf.budget
		}
		return out
	}
	a, b := budgets(3), budgets(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at conn %d: %d vs %d", i+1, a[i], b[i])
		}
	}
}

func TestFaultCorruptionFlipsInFlightBytes(t *testing.T) {
	link := Unlimited()
	f := &Faults{CorruptConnEvery: 1, CorruptAfterBytes: 100, CorruptBytes: 4}
	link.SetFaults(f)
	client, server := link.Pipe()
	defer client.Close()

	want := make([]byte, 1000)
	for i := range want {
		want[i] = byte(i)
	}
	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(client)
		got <- b
	}()
	sent := append([]byte(nil), want...)
	if _, err := server.Write(sent); err != nil {
		t.Fatalf("write: %v", err)
	}
	server.Close()

	var b []byte
	select {
	case b = <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("peer read did not complete")
	}
	// The stream's LENGTH survives — corruption is silent, unlike a kill.
	if len(b) != len(want) {
		t.Fatalf("peer read %d bytes, want %d", len(b), len(want))
	}
	// The writer's own buffer must never be touched: the flips happen on
	// a copy, after the rpc layer has handed its frame over.
	for i := range sent {
		if sent[i] != want[i] {
			t.Fatalf("caller buffer mutated at byte %d", i)
		}
	}
	// With no jitter the window is exact: bytes [100,104) flipped, the
	// rest intact.
	for i := range b {
		flipped := b[i] != want[i]
		inWindow := i >= 100 && i < 104
		if flipped != inWindow {
			t.Fatalf("byte %d: flipped=%v, want corruption only in [100,104)", i, flipped)
		}
	}
	if st := f.Stats(); st.Corruptions == 0 {
		t.Error("Corruptions counter did not advance")
	}
}

func TestFaultCorruptionEveryNthConnection(t *testing.T) {
	link := Unlimited()
	f := &Faults{CorruptConnEvery: 2, CorruptAfterBytes: 0, CorruptBytes: 2}
	link.SetFaults(f)
	for conn := 1; conn <= 4; conn++ {
		client, server := link.Pipe()
		got := make(chan []byte, 1)
		go func() {
			b, _ := io.ReadAll(client)
			got <- b
		}()
		if _, err := server.Write(make([]byte, 64)); err != nil {
			t.Fatalf("conn %d write: %v", conn, err)
		}
		server.Close()
		b := <-got
		client.Close()
		clean := true
		for _, v := range b {
			if v != 0 {
				clean = false
			}
		}
		wantArmed := conn%2 == 1 // connections 1, 3, ...
		if clean == wantArmed {
			t.Errorf("conn %d: corrupted=%v, want %v", conn, !clean, wantArmed)
		}
	}
}

func TestFaultPolicyDetached(t *testing.T) {
	link := Unlimited()
	f := &Faults{RefuseDialEvery: 1, KillConnEvery: 1, KillAfterBytes: 1}
	link.SetFaults(f)
	if link.Faults() != f {
		t.Fatal("Faults() did not return the attached policy")
	}
	link.SetFaults(nil)
	// A detached policy must stop influencing new connections entirely.
	client, server := link.Pipe()
	defer client.Close()
	defer server.Close()
	go io.Copy(io.Discard, client)
	if _, err := server.Write(make([]byte, 64)); err != nil {
		t.Errorf("write after detach = %v, want nil", err)
	}
}

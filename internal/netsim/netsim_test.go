package netsim

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair returns a shaped in-memory connection pair with a reader
// goroutine draining the server side into a buffer.
func transfer(t *testing.T, link *Link, payload []byte) time.Duration {
	t.Helper()
	client, server := link.Pipe()
	defer client.Close()
	defer server.Close()

	var got bytes.Buffer
	done := make(chan error, 1)
	go func() {
		_, err := io.CopyN(&got, server, int64(len(payload)))
		done <- err
	}()

	start := time.Now()
	if _, err := client.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("payload corrupted in transit")
	}
	return elapsed
}

func TestUnlimitedLinkIsFast(t *testing.T) {
	payload := make([]byte, 1<<20)
	elapsed := transfer(t, Unlimited(), payload)
	if elapsed > time.Second {
		t.Errorf("unlimited transfer of 1 MiB took %v", elapsed)
	}
}

func TestBandwidthPacing(t *testing.T) {
	// 1 MiB at 100 Mb/s should take at least ~80 ms.
	link := NewLink(100*Mbps, 0)
	payload := make([]byte, 1<<20)
	elapsed := transfer(t, link, payload)
	ideal := link.TransferTime(int64(len(payload)))
	if elapsed < ideal*8/10 {
		t.Errorf("transfer took %v, expected >= ~%v", elapsed, ideal)
	}
	if elapsed > ideal*3 {
		t.Errorf("transfer took %v, expected close to %v", elapsed, ideal)
	}
}

func TestBandwidthAccuracy(t *testing.T) {
	// The pacing must track the modelled link closely even though small
	// debts skip the OS timer: a 4 MiB transfer at 1 Gb/s is ~33.6 ms and
	// should land within about 25% of it. Wall-clock tests can be blown
	// off course by scheduler load (this box has one core), so allow a
	// few attempts before declaring the pacing broken.
	if raceEnabled {
		t.Skip("race-detector instrumentation slows transfers ~3x, outside the pacing tolerance")
	}
	payload := make([]byte, 4<<20)
	var last string
	for attempt := 0; attempt < 4; attempt++ {
		link := NewLink(1*Gbps, 0)
		elapsed := transfer(t, link, payload)
		ideal := link.TransferTime(int64(len(payload)))
		if elapsed >= ideal*3/4 && elapsed <= ideal*5/4 {
			return
		}
		last = fmt.Sprintf("transfer took %v, ideal %v", elapsed, ideal)
	}
	t.Errorf("pacing error too large on every attempt: %s", last)
}

func TestTransferTime(t *testing.T) {
	link := NewLink(1*Gbps, 0)
	got := link.TransferTime(125_000_000) // 1 Gb/s = 125 MB/s
	if got != time.Second {
		t.Errorf("TransferTime = %v, want 1s", got)
	}
	if Unlimited().TransferTime(1<<30) != 0 {
		t.Error("unlimited link should report zero transfer time")
	}
}

func TestByteCounters(t *testing.T) {
	link := Unlimited()
	payload := make([]byte, 123_456)
	transfer(t, link, payload)
	if link.BytesSent() != int64(len(payload)) {
		t.Errorf("BytesSent = %d, want %d", link.BytesSent(), len(payload))
	}
	if link.BytesReceived() != int64(len(payload)) {
		t.Errorf("BytesReceived = %d, want %d", link.BytesReceived(), len(payload))
	}
	link.ResetCounters()
	if link.BytesSent() != 0 || link.BytesReceived() != 0 {
		t.Error("ResetCounters did not zero")
	}
}

func TestSharedLinkContention(t *testing.T) {
	// Two concurrent flows on one link should take about twice as long as
	// one flow, because they share capacity.
	link := NewLink(200*Mbps, 0)
	payload := make([]byte, 1<<20)

	oneFlow := transfer(t, link, payload)

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			transfer(t, link, payload)
		}()
	}
	wg.Wait()
	twoFlows := time.Since(start)

	if twoFlows < oneFlow*3/2 {
		t.Errorf("two flows took %v, one flow %v; expected ~2x", twoFlows, oneFlow)
	}
}

func TestTCPListenerDial(t *testing.T) {
	link := NewLink(0, 0) // unlimited, but still counted
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shaped := link.Listener(ln)
	defer shaped.Close()

	msg := []byte("hello over shaped tcp")
	go func() {
		c, err := shaped.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(io.Discard, c)
	}()

	c, err := link.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Client write counts on the client-side wrapper; give the listener
	// side a moment to drain.
	deadline := time.Now().Add(2 * time.Second)
	for link.BytesReceived() < int64(len(msg)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if link.BytesSent() < int64(len(msg)) {
		t.Errorf("BytesSent = %d, want >= %d", link.BytesSent(), len(msg))
	}
	if link.BytesReceived() < int64(len(msg)) {
		t.Errorf("BytesReceived = %d, want >= %d", link.BytesReceived(), len(msg))
	}
}

func TestDialLatency(t *testing.T) {
	lat := 30 * time.Millisecond
	link := NewLink(0, lat)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	start := time.Now()
	c, err := link.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if elapsed := time.Since(start); elapsed < lat {
		t.Errorf("dial took %v, want >= %v latency charge", elapsed, lat)
	}
	if link.Latency() != lat {
		t.Errorf("Latency() = %v", link.Latency())
	}
}

func TestGigabitEthernetPreset(t *testing.T) {
	l := GigabitEthernet()
	if l.BitsPerSec() != 1*Gbps {
		t.Errorf("BitsPerSec = %v, want 1e9", l.BitsPerSec())
	}
	if l.Latency() <= 0 {
		t.Error("preset should have nonzero latency")
	}
}

func TestLargeWriteChunking(t *testing.T) {
	// A single Write larger than maxBurst must still deliver everything.
	link := NewLink(0, 0)
	payload := make([]byte, maxBurst*3+17)
	for i := range payload {
		payload[i] = byte(i)
	}
	transfer(t, link, payload)
}

// Package netsim emulates the network link between the storage node and
// the client node. The paper's testbed connects the two machines with
// 1 Gb Ethernet; this reproduction runs on one machine, so all traffic —
// object-store HTTP in the baseline setup, pre-/post-filter RPC in the
// NDP setup — is routed through Link-shaped connections that pace bytes
// at a configurable bandwidth and charge a connection-setup latency.
//
// A single Link can be shared by many connections, which then contend for
// the same capacity exactly as flows on one wire do. Links also count the
// bytes they carry, giving the harness the "network traffic volume"
// numbers the paper reports.
package netsim

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vizndp/internal/telemetry"
)

// Process-wide telemetry for all links: total shaped traffic and the
// cumulative pacing delay the shaper actually induced (the time writers
// spent sleeping to honor the modelled bandwidth).
var (
	mBytesSent    = telemetry.Default().Counter("netsim.bytes.sent")
	mBytesRecv    = telemetry.Default().Counter("netsim.bytes.recv")
	mDelayNanos   = telemetry.Default().Counter("netsim.delay.nanos")
	mDialLatNanos = telemetry.Default().Counter("netsim.dial.latency.nanos")
)

// Common link presets. Bandwidth values are in bits per second to match
// how links are usually named.
const (
	Mbps = 1e6
	Gbps = 1e9
)

// Link models a shared network link with finite bandwidth and a fixed
// one-way latency. The zero value is an unlimited, zero-latency link.
type Link struct {
	bytesPerSec float64
	latency     time.Duration

	mu       sync.Mutex
	nextFree time.Time

	sent atomic.Int64
	recv atomic.Int64

	// faults, when set, injects the attached policy's failures into the
	// link's dials and connections.
	faults atomic.Pointer[Faults]
}

// SetFaults attaches a fault-injection policy to the link; nil detaches
// it. Connections wrapped after the call observe the new policy;
// already-wrapped connections keep the fault state they were born with.
func (l *Link) SetFaults(f *Faults) { l.faults.Store(f) }

// Faults returns the attached policy, or nil.
func (l *Link) Faults() *Faults { return l.faults.Load() }

// NewLink returns a link with the given capacity in bits per second
// (use the Mbps/Gbps constants) and one-way latency. A non-positive
// bandwidth means unlimited.
func NewLink(bitsPerSec float64, latency time.Duration) *Link {
	return &Link{bytesPerSec: bitsPerSec / 8, latency: latency}
}

// GigabitEthernet returns the paper's testbed link: 1 Gb/s with a typical
// LAN latency.
func GigabitEthernet() *Link {
	return NewLink(1*Gbps, 100*time.Microsecond)
}

// Unlimited returns a link that shapes nothing but still counts bytes.
func Unlimited() *Link { return &Link{} }

// BytesSent returns the total bytes written through the link.
func (l *Link) BytesSent() int64 { return l.sent.Load() }

// BytesReceived returns the total bytes read through the link.
func (l *Link) BytesReceived() int64 { return l.recv.Load() }

// ResetCounters zeroes the byte counters.
func (l *Link) ResetCounters() {
	l.sent.Store(0)
	l.recv.Store(0)
}

// Latency returns the link's one-way latency.
func (l *Link) Latency() time.Duration { return l.latency }

// BitsPerSec returns the configured capacity, or 0 for unlimited.
func (l *Link) BitsPerSec() float64 { return l.bytesPerSec * 8 }

// TransferTime returns the ideal serialized transfer time for n bytes,
// ignoring contention. Used by the analytic cost model.
func (l *Link) TransferTime(n int64) time.Duration {
	if l.bytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / l.bytesPerSec * float64(time.Second))
}

// reserve books n bytes of capacity and returns the deadline at which
// the bytes have "arrived" (the zero time when no wait is needed).
// Shared across all connections on the link, so concurrent flows divide
// the capacity.
func (l *Link) reserve(n int) time.Time {
	if l.bytesPerSec <= 0 {
		return time.Time{}
	}
	tx := time.Duration(float64(n) / l.bytesPerSec * float64(time.Second))
	l.mu.Lock()
	now := time.Now()
	start := l.nextFree
	if start.Before(now) {
		start = now
	}
	end := start.Add(tx)
	l.nextFree = end
	l.mu.Unlock()
	return end
}

// maxBurst keeps individual reservations small so concurrent flows
// interleave rather than one flow monopolizing the wire.
const maxBurst = 64 * 1024

// minSleep is the smallest pacing debt worth sleeping for. The OS timer
// overshoots sleeps by up to ~1ms, so paying it for sub-millisecond
// debts would inflate transfer times far beyond the modelled link; small
// debts accumulate in the link's nextFree horizon instead and are repaid
// on a later chunk.
const minSleep = 2 * time.Millisecond

// sleepUntil sleeps to a deadline with reduced overshoot: a coarse sleep
// to within a millisecond, then yield-spinning for the remainder.
func sleepUntil(deadline time.Time) {
	for {
		d := time.Until(deadline)
		if d <= 0 {
			return
		}
		if d > 2*time.Millisecond {
			time.Sleep(d - 2*time.Millisecond)
			continue
		}
		// Yield-spin the final stretch: the OS timer overshoots by up to
		// a millisecond, which would accumulate across a transfer's many
		// pacing points.
		runtime.Gosched()
	}
}

// Conn wraps c so that all writes are paced by the link. Reads are left
// unshaped: the peer's writes already paid for the bytes, and shaping
// both sides would double-charge every transfer. Consequently both
// endpoints of a connection should be wrapped (listener side and dialer
// side) so that each direction's traffic is paced exactly once, by its
// sender.
//
// A connection wrapped via Conn counts as dialer-side for the attached
// fault policy: latency spikes apply, connection kills do not (kills
// target accepted connections — the payload direction). Listener and
// Pipe wrap the server side as accepted.
func (l *Link) Conn(c net.Conn) net.Conn {
	return l.wrap(c, false)
}

// wrap builds the shaped connection; accepted connections additionally
// roll per-connection kill state from the attached fault policy.
func (l *Link) wrap(c net.Conn, accepted bool) net.Conn {
	s := &shapedConn{Conn: c, link: l}
	if f := l.Faults(); f != nil && accepted {
		s.cf = f.newConnFaults()
	}
	return s
}

type shapedConn struct {
	net.Conn
	link *Link
	cf   *connFaults // kill state; nil when no faults or dialer-side
}

func (s *shapedConn) Write(b []byte) (int, error) {
	faults := s.link.Faults()
	total := 0
	for len(b) > 0 {
		chunk := b
		if len(chunk) > maxBurst {
			chunk = chunk[:maxBurst]
		}
		if faults != nil {
			faults.onWrite() // latency spike schedule
		}
		kill := false
		if s.cf != nil {
			// Stream offset of this chunk's first byte, captured before
			// admit advances the written total.
			startOff := s.cf.written
			var allowed int
			allowed, kill = s.cf.admit(len(chunk))
			chunk = s.cf.mangle(chunk[:allowed], startOff)
		}
		if len(chunk) > 0 {
			// Only pay the OS timer when the accumulated pacing debt is
			// large enough to be worth it; the link's horizon carries small
			// debts forward, so long-run throughput stays exact.
			if deadline := s.link.reserve(len(chunk)); !deadline.IsZero() {
				if wait := time.Until(deadline); wait >= minSleep {
					sleepUntil(deadline)
					mDelayNanos.Add(int64(wait))
				}
			}
			n, err := s.Conn.Write(chunk)
			total += n
			s.link.sent.Add(int64(n))
			mBytesSent.Add(int64(n))
			if err != nil {
				return total, err
			}
			b = b[n:]
		}
		if kill {
			// The injected death: whatever prefix was admitted is on the
			// wire (a truncated frame when it cut mid-chunk); both
			// directions go down with the underlying connection.
			s.Conn.Close()
			return total, ErrConnKilled
		}
	}
	return total, nil
}

func (s *shapedConn) Read(b []byte) (int, error) {
	n, err := s.Conn.Read(b)
	s.link.recv.Add(int64(n))
	mBytesRecv.Add(int64(n))
	return n, err
}

// Listener wraps ln so every accepted connection is shaped by the link.
func (l *Link) Listener(ln net.Listener) net.Listener {
	return &shapedListener{Listener: ln, link: l}
}

type shapedListener struct {
	net.Listener
	link *Link
}

func (s *shapedListener) Accept() (net.Conn, error) {
	c, err := s.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return s.link.wrap(c, true), nil
}

// Dial connects to addr over TCP, charges the connection-setup latency,
// and returns a shaped connection. An attached fault policy may refuse
// the dial according to its schedule.
func (l *Link) Dial(network, addr string) (net.Conn, error) {
	if f := l.Faults(); f != nil {
		if err := f.onDial(); err != nil {
			return nil, err
		}
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	if l.latency > 0 {
		time.Sleep(l.latency)
		mDialLatNanos.Add(int64(l.latency))
	}
	return l.Conn(c), nil
}

// Pipe returns an in-memory connection pair whose client->server and
// server->client directions are both shaped by the link. Useful for
// tests that avoid real sockets. The server end counts as accepted for
// the attached fault policy.
func (l *Link) Pipe() (client, server net.Conn) {
	c, s := net.Pipe()
	return l.Conn(c), l.wrap(s, true)
}

package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vizndp/internal/telemetry"
)

// Fault-injection metrics, reported per class so a /metrics scrape (or
// the harness) can prove which faults a run actually survived.
var (
	mFaultDialsRefused = telemetry.Default().Counter("netsim.fault.dials.refused")
	mFaultConnsKilled  = telemetry.Default().Counter("netsim.fault.conns.killed")
	mFaultTruncations  = telemetry.Default().Counter("netsim.fault.frames.truncated")
	mFaultSpikes       = telemetry.Default().Counter("netsim.fault.latency.spikes")
	mFaultCorruptions  = telemetry.Default().Counter("netsim.fault.corruptions")
)

// ErrDialRefused is the injected connection-refused error.
var ErrDialRefused = errors.New("netsim: injected dial refusal")

// ErrConnKilled is the injected mid-connection failure; the writer that
// trips the kill sees it, the peer sees the closed connection (EOF or a
// truncated frame).
var ErrConnKilled = errors.New("netsim: injected connection kill")

// Faults is a deterministic, seeded fault-injection policy attachable
// to a Link with SetFaults. Four fault classes are modelled, matching
// how a storage tier actually misbehaves:
//
//   - dial refusals: every RefuseDialEvery-th Dial fails with
//     ErrDialRefused (the storage node is restarting);
//   - connection kills after N bytes: accepted connections numbered
//     1, 1+KillConnEvery, 1+2*KillConnEvery, ... are armed and die once
//     their writes exceed a byte budget around KillAfterBytes;
//   - mid-frame truncation: when an armed connection's budget runs out
//     inside a write, the prefix up to the budget is written before the
//     connection closes — the peer reads a truncated length-prefixed
//     frame, the nastiest wire state a crash can leave behind;
//   - latency spikes: every SpikeEvery-th shaped write pauses for
//     SpikeLatency before transmitting (a congested or flapping link);
//   - in-flight payload corruption: accepted connections numbered
//     1, 1+CorruptConnEvery, ... have CorruptBytes of their outbound
//     stream XOR-flipped starting a seeded offset past CorruptAfterBytes
//     — the connection stays up and the frame lengths stay intact, so
//     the damage reaches the peer's decoder looking like valid data (a
//     misbehaving middlebox or NIC).
//
// KillAfterTime is a separate guillotine: when positive, every accepted
// connection (armed or not) dies at its first write after living that
// long — a periodic storage-node restart.
//
// Schedules are deterministic: class selection is pure counting
// (connection and dial ordinals), and the only randomness — the
// per-connection byte-budget jitter — comes from a rand.Rand seeded
// with Seed, so a given arrival order replays identically.
type Faults struct {
	// Seed drives the byte-budget jitter. Zero is a valid fixed seed.
	Seed int64
	// RefuseDialEvery n refuses dials number n, 2n, 3n, ... (0 = never).
	// The first dial is never refused, so lazily-connecting clients can
	// come up before the fault campaign starts.
	RefuseDialEvery int
	// KillConnEvery n arms accepted connections 1, 1+n, 1+2n, ...
	// (0 = never). Arming the first connection makes the very first
	// transfer face a fault.
	KillConnEvery int
	// KillAfterBytes is the armed connection's write budget. The actual
	// budget is KillAfterBytes plus a seeded jitter in [0, JitterBytes].
	KillAfterBytes int64
	// JitterBytes spreads armed budgets so kills land at varied frame
	// offsets; 0 keeps budgets exact (deterministic tests).
	JitterBytes int64
	// KillAfterTime, when positive, kills every accepted connection at
	// its first write after this age.
	KillAfterTime time.Duration
	// SpikeEvery n stalls shaped writes number n, 2n, ... by
	// SpikeLatency (0 = never).
	SpikeEvery   int
	SpikeLatency time.Duration
	// CorruptConnEvery n arms accepted connections 1, 1+n, 1+2n, ...
	// for in-flight payload corruption (0 = never).
	CorruptConnEvery int
	// CorruptAfterBytes is how far into the armed connection's outbound
	// stream the corruption window opens; the actual offset adds a
	// seeded jitter in [0, JitterBytes]. Offsetting past the first few
	// hundred bytes leaves handshake-sized frames intact and lands the
	// flips inside bulk payloads.
	CorruptAfterBytes int64
	// CorruptBytes is how many bytes of the stream the armed connection
	// flips once the window opens; 0 defaults to 8.
	CorruptBytes int

	initOnce sync.Once
	mu       sync.Mutex // guards rng
	rng      *rand.Rand

	dials  atomic.Int64
	conns  atomic.Int64
	writes atomic.Int64

	refused   atomic.Int64
	killed    atomic.Int64
	truncated atomic.Int64
	spiked    atomic.Int64
	corrupted atomic.Int64
}

// FaultStats is a snapshot of the faults a policy has injected.
type FaultStats struct {
	DialsRefused    int64
	ConnsKilled     int64
	FramesTruncated int64
	LatencySpikes   int64
	// Corruptions counts write chunks whose bytes were flipped in
	// flight by the payload-corruption class.
	Corruptions int64
}

func (s FaultStats) String() string {
	return fmt.Sprintf("%d dials refused, %d conns killed, %d frames truncated, %d latency spikes, %d chunks corrupted",
		s.DialsRefused, s.ConnsKilled, s.FramesTruncated, s.LatencySpikes, s.Corruptions)
}

// Stats returns the counts of injected faults so far.
func (f *Faults) Stats() FaultStats {
	return FaultStats{
		DialsRefused:    f.refused.Load(),
		ConnsKilled:     f.killed.Load(),
		FramesTruncated: f.truncated.Load(),
		LatencySpikes:   f.spiked.Load(),
		Corruptions:     f.corrupted.Load(),
	}
}

func (f *Faults) init() {
	f.initOnce.Do(func() {
		f.rng = rand.New(rand.NewSource(f.Seed))
	})
}

// onDial charges one dial against the refusal schedule.
func (f *Faults) onDial() error {
	n := f.dials.Add(1)
	if f.RefuseDialEvery > 0 && n%int64(f.RefuseDialEvery) == 0 {
		f.refused.Add(1)
		mFaultDialsRefused.Inc()
		return fmt.Errorf("%w (dial %d)", ErrDialRefused, n)
	}
	return nil
}

// newConnFaults rolls the fault state for one accepted connection.
func (f *Faults) newConnFaults() *connFaults {
	f.init()
	n := f.conns.Add(1)
	cf := &connFaults{faults: f, born: time.Now()}
	if f.KillConnEvery > 0 && (n-1)%int64(f.KillConnEvery) == 0 {
		cf.armed = true
		cf.budget = f.KillAfterBytes
		if f.JitterBytes > 0 {
			f.mu.Lock()
			cf.budget += f.rng.Int63n(f.JitterBytes + 1)
			f.mu.Unlock()
		}
	}
	if f.CorruptConnEvery > 0 && (n-1)%int64(f.CorruptConnEvery) == 0 {
		cf.corruptAt = f.CorruptAfterBytes
		if f.JitterBytes > 0 {
			f.mu.Lock()
			cf.corruptAt += f.rng.Int63n(f.JitterBytes + 1)
			f.mu.Unlock()
		}
		cf.corruptLeft = f.CorruptBytes
		if cf.corruptLeft <= 0 {
			cf.corruptLeft = 8
		}
	}
	return cf
}

// onWrite charges one shaped write against the spike schedule.
func (f *Faults) onWrite() {
	n := f.writes.Add(1)
	if f.SpikeEvery > 0 && n%int64(f.SpikeEvery) == 0 && f.SpikeLatency > 0 {
		f.spiked.Add(1)
		mFaultSpikes.Inc()
		time.Sleep(f.SpikeLatency)
	}
}

// connFaults is the per-connection kill and corruption state.
type connFaults struct {
	faults  *Faults
	born    time.Time
	armed   bool
	budget  int64 // remaining write budget while armed
	written int64
	dead    bool

	// Corruption window: flip corruptLeft bytes of the outbound stream
	// starting at stream offset corruptAt. corruptLeft == 0 means the
	// connection is not armed for corruption (or the window is spent).
	corruptAt   int64
	corruptLeft int
}

// admit decides the fate of one write chunk: how many of its bytes may
// go out, and whether the connection dies after them. A cut strictly
// inside the chunk leaves a partial frame on the wire and is counted as
// a truncation. Not safe for concurrent use; netsim connections have a
// single writer per direction (the rpc layer serializes frames).
func (cf *connFaults) admit(n int) (allowed int, kill bool) {
	if cf.dead {
		return 0, true
	}
	f := cf.faults
	if f.KillAfterTime > 0 && time.Since(cf.born) >= f.KillAfterTime {
		cf.dead = true
		f.killed.Add(1)
		mFaultConnsKilled.Inc()
		return 0, true
	}
	if cf.armed {
		remaining := cf.budget - cf.written
		if remaining <= int64(n) {
			cf.dead = true
			f.killed.Add(1)
			mFaultConnsKilled.Inc()
			allowed = int(max64(remaining, 0))
			if allowed > 0 && allowed < n {
				f.truncated.Add(1)
				mFaultTruncations.Inc()
			}
			cf.written += int64(allowed)
			return allowed, true
		}
	}
	cf.written += int64(n)
	return n, false
}

// mangle applies the corruption window to one admitted write chunk
// whose first byte sits at stream offset startOff (the connection's
// written total before this chunk was charged). The caller's buffer is
// the rpc encoder's frame — it must never be modified — so an
// overlapping chunk is copied before its bytes are XOR-flipped. Like
// admit, not safe for concurrent use.
func (cf *connFaults) mangle(chunk []byte, startOff int64) []byte {
	if cf.corruptLeft <= 0 || len(chunk) == 0 {
		return chunk
	}
	if startOff+int64(len(chunk)) <= cf.corruptAt {
		return chunk
	}
	lo := cf.corruptAt - startOff
	if lo < 0 {
		lo = 0
	}
	out := append([]byte(nil), chunk...)
	for i := lo; i < int64(len(out)) && cf.corruptLeft > 0; i++ {
		out[i] ^= 0x5A
		cf.corruptLeft--
	}
	cf.faults.corrupted.Add(1)
	mFaultCorruptions.Inc()
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

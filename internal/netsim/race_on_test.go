//go:build race

package netsim

// raceEnabled reports whether this binary was built with the race
// detector, whose instrumentation slows transfers far past the pacing
// tolerances the wall-clock tests assert.
const raceEnabled = true

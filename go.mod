module vizndp

go 1.22

// Nyx: halo finding on the cosmology dataset (the paper's Sec. VII).
//
// Generates the Nyx-like snapshot, serves it from an emulated storage
// node, and contours the baryon density at the halo-formation threshold
// (81.66) both ways — baseline full-array reads vs NDP pre-filtering.
// Because the halo surfaces cover ~0.1% of mesh points, NDP moves three
// orders of magnitude fewer bytes. Renders a Fig. 12-style image of the
// candidate halo regions.
//
//	go run ./examples/nyx [-n 96] [-gbps 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"image/color"
	"log"
	"net"
	"os"
	"time"

	"vizndp"
	"vizndp/internal/stats"
)

func main() {
	log.SetFlags(0)
	var (
		n    = flag.Int("n", 96, "grid edge length")
		gbps = flag.Float64("gbps", 1, "inter-node link capacity in Gb/s")
	)
	flag.Parse()
	if err := run(*n, *gbps); err != nil {
		log.Fatal(err)
	}
}

func run(n int, gbps float64) error {
	fmt.Printf("generating Nyx snapshot at %d^3...\n", n)
	ds, err := vizndp.GenerateNyx(vizndp.NyxConfig{N: n, Seed: 13})
	if err != nil {
		return err
	}
	lo, hi := ds.Field("baryon_density").Range()
	fmt.Printf("baryon density range: [%.3g, %.3g]; halo threshold %.2f\n",
		lo, hi, vizndp.NyxHaloThreshold)

	// ---- storage node ----
	dataDir, err := os.MkdirTemp("", "nyx-example-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	store, err := vizndp.NewObjectStore(dataDir)
	if err != nil {
		return err
	}
	link := vizndp.NewLink(gbps*1e9, 100*time.Microsecond)
	storeAddr, stopStore, err := store.ListenAndServe("127.0.0.1:0", link.Listener)
	if err != nil {
		return err
	}
	defer stopStore()
	localAddr, stopLocal, err := store.ListenAndServe("127.0.0.1:0", nil)
	if err != nil {
		return err
	}
	defer stopLocal()

	localClient := vizndp.NewObjectClient(localAddr, nil)
	blob, err := vizndp.EncodeDataset(ds, vizndp.WriteOptions{Codec: vizndp.Raw})
	if err != nil {
		return err
	}
	const key = "nyx/raw/ts00000.vnd"
	if err := localClient.Put("sim", key, blob); err != nil {
		return err
	}

	ndpSrv := vizndp.NewNDPServer(vizndp.NewBucketFS(localClient, "sim"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go ndpSrv.Serve(link.Listener(ln))
	defer ndpSrv.Close()

	// ---- client node ----
	isos := []float64{vizndp.NyxHaloThreshold}
	remoteFS := vizndp.NewBucketFS(vizndp.NewObjectClient(storeAddr, link.Dial), "sim")
	base := vizndp.NewPipeline(
		&vizndp.FileSource{FS: remoteFS, Path: key, Arrays: []string{"baryon_density"}},
		&vizndp.ContourFilter{Array: "baryon_density", Isovalues: isos},
	)
	baseOut, err := base.Run(context.Background())
	if err != nil {
		return err
	}
	baseLoad := base.StageTime(vizndp.SourceStageName)

	ndpClient, err := vizndp.DialNDP(ln.Addr().String(), link.Dial)
	if err != nil {
		return err
	}
	defer ndpClient.Close()
	src := &vizndp.NDPSource{
		Client:    ndpClient,
		Path:      key,
		Arrays:    []string{"baryon_density"},
		Isovalues: isos,
	}
	ndp := vizndp.NewPipeline(src,
		&vizndp.ContourFilter{Array: "baryon_density", Isovalues: isos})
	ndpOut, err := ndp.Run(context.Background())
	if err != nil {
		return err
	}
	ndpLoad := ndp.StageTime(vizndp.SourceStageName)

	baseMesh := baseOut.(*vizndp.Mesh)
	ndpMesh := ndpOut.(*vizndp.Mesh)
	if !baseMesh.Equal(ndpMesh) {
		return fmt.Errorf("NDP halo contour differs from baseline")
	}

	st := src.Stats["baryon_density"]
	fmt.Printf("halo contour: %d triangles across candidate halos\n", ndpMesh.NumTriangles())
	fmt.Printf("selectivity:  %d of %d points (%.4f%%)\n",
		st.SelectedPoints, ds.Grid.NumPoints(),
		100*float64(st.SelectedPoints)/float64(ds.Grid.NumPoints()))
	fmt.Printf("transfer:     %s instead of %s\n",
		vizndp.FormatBytes(st.PayloadBytes), vizndp.FormatBytes(st.RawBytes))
	fmt.Printf("load time:    baseline %s, NDP %s (%.2fx)\n",
		stats.FormatDuration(baseLoad), stats.FormatDuration(ndpLoad),
		stats.Speedup(baseLoad, ndpLoad))

	// Bonus: the split threshold filter — ask the storage node for the
	// cells whose density reaches halo level at all, a common follow-up
	// query for halo finding.
	payload, tstats, err := ndpClient.FetchRange(key, "baryon_density",
		vizndp.NyxHaloThreshold, 1e30, vizndp.EncAuto)
	if err != nil {
		return err
	}
	cells, err := vizndp.ThresholdFromPayload(ds.Grid, payload, vizndp.NyxHaloThreshold, 1e30)
	if err != nil {
		return err
	}
	fmt.Printf("threshold:    %d candidate halo cells (moved %s)\n",
		cells.Count(), vizndp.FormatBytes(tstats.PayloadBytes))

	img, err := vizndp.RenderMesh(ndpMesh, color.RGBA{R: 90, G: 200, B: 120, A: 255},
		vizndp.RenderOptions{Width: 800, Height: 800, AzimuthDeg: 40, ElevationDeg: 20})
	if err != nil {
		return err
	}
	if err := vizndp.SavePNG(img, "nyx-halos.png"); err != nil {
		return err
	}
	fmt.Println("wrote nyx-halos.png")
	return nil
}

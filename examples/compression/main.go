// Compression: the paper's Sec. IV study, standalone.
//
// Generates asteroid timesteps and reports, per timestep: the stored
// sizes of v02/v03 under GZip and LZ4, the resulting compression ratios,
// and local load (decompression) times — showing GZip's better ratio but
// slower decode, and the ratio decay as simulation entropy grows.
//
//	go run ./examples/compression [-n 64] [-steps 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"vizndp"
	"vizndp/internal/stats"
)

func main() {
	log.SetFlags(0)
	var (
		n     = flag.Int("n", 64, "grid edge length")
		steps = flag.Int("steps", 5, "number of timesteps")
	)
	flag.Parse()
	if err := run(*n, *steps); err != nil {
		log.Fatal(err)
	}
}

func run(n, steps int) error {
	dir, err := os.MkdirTemp("", "compression-example-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := vizndp.AsteroidConfig{N: n, Seed: 7}
	codecs := []vizndp.CompressionKind{vizndp.Raw, vizndp.Gzip, vizndp.LZ4}

	fmt.Printf("%-8s  %-5s  %-10s  %-10s  %-8s  %-10s\n",
		"step", "array", "codec", "size", "ratio", "local load")
	for i := 0; i < steps; i++ {
		step := i * vizndp.AsteroidMaxStep / maxInt(1, steps-1)
		ds, err := vizndp.GenerateAsteroid(cfg, step)
		if err != nil {
			return err
		}
		for _, codec := range codecs {
			path := filepath.Join(dir, fmt.Sprintf("ts%05d-%s.vnd", step, codec))
			if err := vizndp.WriteDatasetFile(path, ds, vizndp.WriteOptions{Codec: codec}); err != nil {
				return err
			}
			r, closeFn, err := vizndp.OpenDatasetFile(path)
			if err != nil {
				return err
			}
			for _, array := range []string{"v02", "v03"} {
				info := r.Header().Array(array)
				start := time.Now()
				if _, err := r.ReadArray(array); err != nil {
					closeFn()
					return err
				}
				load := time.Since(start)
				fmt.Printf("%-8d  %-5s  %-10s  %-10s  %-8.1f  %-10s\n",
					step, array, codec.String(),
					stats.FormatBytes(info.CompressedSize()),
					float64(info.RawSize())/float64(info.CompressedSize()),
					stats.FormatDuration(load))
			}
			closeFn()
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

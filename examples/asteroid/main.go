// Asteroid: the paper's primary experiment as a runnable scenario.
//
// Emulates the two-node testbed in one process — an object store on the
// storage node, a 1 GbE link to the client, and an NDP pre-filter
// service — then runs the deep-water asteroid impact workload both ways:
//
//   - baseline: the client reads entire v02/v03 arrays over the link
//     (through the s3fs layer) and contours them locally;
//   - NDP: the storage node pre-filters near the data and ships only the
//     mesh points the contour needs.
//
// Prints per-timestep data load times and speedups, and renders a
// Fig. 4-style frame (cyan water + yellow asteroid) per timestep.
//
//	go run ./examples/asteroid [-n 64] [-steps 5] [-gbps 1] [-outdir frames]
package main

import (
	"context"
	"flag"
	"fmt"
	"image/color"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"vizndp"
	"vizndp/internal/stats"
)

func main() {
	log.SetFlags(0)
	var (
		n      = flag.Int("n", 96, "grid edge length")
		steps  = flag.Int("steps", 5, "number of timesteps")
		gbps   = flag.Float64("gbps", 1, "inter-node link capacity in Gb/s")
		outdir = flag.String("outdir", "frames", "directory for rendered frames")
	)
	flag.Parse()

	if err := run(*n, *steps, *gbps, *outdir); err != nil {
		log.Fatal(err)
	}
}

func run(n, steps int, gbps float64, outdir string) error {
	// ---- storage node ----
	dataDir, err := os.MkdirTemp("", "asteroid-example-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	store, err := vizndp.NewObjectStore(dataDir)
	if err != nil {
		return err
	}
	link := vizndp.NewLink(gbps*1e9, 100*time.Microsecond)
	storeAddr, stopStore, err := store.ListenAndServe("127.0.0.1:0", link.Listener)
	if err != nil {
		return err
	}
	defer stopStore()
	// Node-local listener for the NDP server's own mount.
	localAddr, stopLocal, err := store.ListenAndServe("127.0.0.1:0", nil)
	if err != nil {
		return err
	}
	defer stopLocal()

	// Populate: raw timesteps uploaded through the local path (the paper's
	// headline comparison; use compressed codecs via cmd/vizpipe).
	localClient := vizndp.NewObjectClient(localAddr, nil)
	cfg := vizndp.AsteroidConfig{N: n, Seed: 7}
	var stepIDs []int
	for i := 0; i < steps; i++ {
		stepIDs = append(stepIDs, i*vizndp.AsteroidMaxStep/max(1, steps-1))
	}
	fmt.Printf("generating %d timesteps at %d^3...\n", steps, n)
	for _, step := range stepIDs {
		ds, err := vizndp.GenerateAsteroid(cfg, step)
		if err != nil {
			return err
		}
		blob, err := vizndp.EncodeDataset(ds, vizndp.WriteOptions{Codec: vizndp.Raw})
		if err != nil {
			return err
		}
		if err := localClient.Put("sim", key(step), blob); err != nil {
			return err
		}
	}

	// NDP pre-filter service, mounted on the node-local store.
	ndpSrv := vizndp.NewNDPServer(vizndp.NewBucketFS(localClient, "sim"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go ndpSrv.Serve(link.Listener(ln))
	defer ndpSrv.Close()

	// ---- client node ----
	remoteFS := vizndp.NewBucketFS(vizndp.NewObjectClient(storeAddr, link.Dial), "sim")
	ndpClient, err := vizndp.DialNDP(ln.Addr().String(), link.Dial)
	if err != nil {
		return err
	}
	defer ndpClient.Close()

	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}

	isos := []float64{0.1}
	arrays := []string{"v02", "v03"}
	fmt.Printf("\n%-8s  %-12s  %-12s  %s\n", "step", "baseline", "ndp", "speedup")
	for _, step := range stepIDs {
		// Baseline pipeline: full arrays over the link.
		base := vizndp.NewPipeline(
			&vizndp.FileSource{FS: remoteFS, Path: key(step), Arrays: arrays},
			&vizndp.MultiContour{Filters: []*vizndp.ContourFilter{
				{Array: "v02", Isovalues: isos},
				{Array: "v03", Isovalues: isos},
			}},
		)
		baseOut, err := base.Run(context.Background())
		if err != nil {
			return err
		}
		baseLoad := base.StageTime(vizndp.SourceStageName)

		// NDP pipeline: pre-filtered payloads over the link.
		src := &vizndp.NDPSource{
			Client:    ndpClient,
			Path:      key(step),
			Arrays:    arrays,
			Isovalues: isos,
		}
		ndp := vizndp.NewPipeline(src,
			&vizndp.MultiContour{Filters: []*vizndp.ContourFilter{
				{Array: "v02", Isovalues: isos},
				{Array: "v03", Isovalues: isos},
			}},
		)
		ndpOut, err := ndp.Run(context.Background())
		if err != nil {
			return err
		}
		ndpLoad := ndp.StageTime(vizndp.SourceStageName)

		// Same contours either way.
		bm := baseOut.(map[string]any)
		nm := ndpOut.(map[string]any)
		for _, a := range arrays {
			if !bm[a].(*vizndp.Mesh).Equal(nm[a].(*vizndp.Mesh)) {
				return fmt.Errorf("step %d: NDP contour of %s differs from baseline", step, a)
			}
		}

		fmt.Printf("%-8d  %-12s  %-12s  %.2fx\n", step,
			stats.FormatDuration(baseLoad), stats.FormatDuration(ndpLoad),
			stats.Speedup(baseLoad, ndpLoad))

		// Fig. 4-style frame: water in cyan, asteroid in yellow.
		img, err := vizndp.RenderMeshes([]vizndp.RenderLayer{
			{Mesh: nm["v02"].(*vizndp.Mesh), Color: color.RGBA{R: 40, G: 210, B: 210, A: 255}},
			{Mesh: nm["v03"].(*vizndp.Mesh), Color: color.RGBA{R: 235, G: 210, B: 40, A: 255}},
		}, vizndp.RenderOptions{Width: 640, Height: 640, AzimuthDeg: 35, ElevationDeg: 25})
		if err != nil {
			return err
		}
		frame := filepath.Join(outdir, fmt.Sprintf("impact-%05d.png", step))
		if err := vizndp.SavePNG(img, frame); err != nil {
			return err
		}
	}
	fmt.Printf("\nframes written to %s/\n", outdir)
	return nil
}

func key(step int) string { return fmt.Sprintf("asteroid/raw/ts%05d.vnd", step) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Quickstart: the split contour filter in a single process.
//
// Generates one timestep of the deep-water asteroid impact dataset, runs
// the pre-filter/post-filter pair locally over the wire format, verifies
// the result against a plain full-array contour, and renders a PNG.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"image/color"
	"log"

	"vizndp"
)

func main() {
	log.SetFlags(0)

	// One mid-impact timestep of the 11-array xRage-like dataset.
	ds, err := vizndp.GenerateAsteroid(vizndp.AsteroidConfig{N: 64, Seed: 7}, 24006)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %v grid, %d arrays\n", ds.Grid.Dims, ds.NumFields())

	// Contour the water surface (v02) at 0.1 with the split filter: the
	// pre-filter selects only the mesh points the contour needs, the
	// post-filter rebuilds the contour from that sparse payload.
	field := ds.Field("v02")
	mesh, stats, err := vizndp.SplitContour(ds.Grid, field, []float64{0.1}, vizndp.EncAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-filter: selected %d of %d points (%.3f%%)\n",
		stats.SelectedPoints, stats.NumPoints, 100*stats.Selectivity())
	fmt.Printf("transfer:   %s instead of %s (%.0fx reduction)\n",
		vizndp.FormatBytes(stats.PayloadBytes),
		vizndp.FormatBytes(stats.RawBytes),
		stats.Reduction())

	// The invariant the system rests on: identical output.
	full, err := vizndp.MarchingTetrahedra(ds.Grid, field.Values, []float64{0.1})
	if err != nil {
		log.Fatal(err)
	}
	if !mesh.Equal(full) {
		log.Fatal("BUG: split contour differs from full contour")
	}
	fmt.Printf("contour:    %d triangles, identical to the full-array contour\n",
		mesh.NumTriangles())

	img, err := vizndp.RenderMesh(mesh, color.RGBA{R: 40, G: 210, B: 210, A: 255},
		vizndp.RenderOptions{Width: 640, Height: 640, AzimuthDeg: 35, ElevationDeg: 30})
	if err != nil {
		log.Fatal(err)
	}
	if err := vizndp.SavePNG(img, "quickstart.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.png")
}

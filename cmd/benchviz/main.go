// Command benchviz regenerates every table and figure of the paper's
// evaluation by standing up the emulated two-node testbed (object store
// on a storage node, shaped 1 GbE link, NDP pre-filter service) and
// sweeping the experiments. Results print as aligned text tables; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Examples:
//
//	benchviz                      # full sweep at the default scale
//	benchviz -exp fig13,tab2      # only the named experiments
//	benchviz -n 64 -steps 5 -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"vizndp/internal/compress"
	"vizndp/internal/harness"
	"vizndp/internal/netsim"
	"vizndp/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchviz: ")

	var (
		exp     = flag.String("exp", "all", "comma-separated experiments: fig1,fig5,fig6,fig13,tab2,fig14,ablations,e2e,lossy,slice,repeat,faults,overload,crowd,slo,shard,corrupt or all")
		n       = flag.Int("n", 0, "asteroid/nyx grid edge length (0 = config default)")
		steps   = flag.Int("steps", 0, "asteroid timesteps (0 = config default)")
		gbps    = flag.Float64("gbps", 0, "inter-node link capacity in Gb/s (0 = config default)")
		repeats = flag.Int("repeats", 0, "measurement repetitions (0 = config default)")
		cacheB  = flag.Int64("cache-bytes", 0, "repeat experiment: array cache budget in bytes (0 = config default)")
		quick   = flag.Bool("quick", false, "use the small quick configuration")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut = flag.Bool("json", false, "emit one machine-readable JSON document instead of text tables")
		outFile = flag.String("o", "", "write results to this file instead of stdout")
		dataDir = flag.String("data", "", "scratch directory for the object store (temp dir if empty)")
	)
	flag.Parse()

	// Result destination. In -json mode every human-oriented line
	// (progress, summary) moves to stderr so the document on the result
	// stream stays parseable.
	out := io.Writer(os.Stdout)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		out = f
	}
	progress := io.Writer(os.Stdout)
	if *jsonOut || *outFile != "" {
		progress = os.Stderr
	}

	dir := *dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "benchviz-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	cfg := harness.DefaultConfig(dir)
	if *quick {
		cfg = harness.QuickConfig(dir)
	}
	if *n > 0 {
		cfg.AsteroidN = *n
		cfg.NyxN = *n
	}
	if *steps > 0 {
		cfg.NumTimesteps = *steps
	}
	if *gbps > 0 {
		cfg.LinkBits = *gbps * netsim.Gbps
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	if *cacheB > 0 {
		cfg.CacheBytes = *cacheB
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	fmt.Fprintf(progress, "building testbed: %d^3 grids, %d timesteps, %g Gb/s link, %d repeats\n",
		cfg.AsteroidN, cfg.NumTimesteps, cfg.LinkBits/netsim.Gbps, cfg.Repeats)
	start := time.Now()
	env, err := harness.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	fmt.Fprintf(progress, "testbed ready in %s\n\n", time.Since(start).Round(time.Millisecond))

	var collected []*stats.Table
	show := func(t *stats.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			collected = append(collected, t)
			fmt.Fprintf(progress, "done: %s\n", t.Title)
			return
		}
		if *csv {
			fmt.Fprintf(out, "# %s\n%s\n", t.Title, t.CSV())
			return
		}
		fmt.Fprintln(out, t.String())
	}

	if all || want["fig1"] {
		show(env.Fig1())
	}
	if all || want["fig5"] {
		show(env.Fig5("v02"))
		show(env.Fig5("v03"))
	}
	if all || want["fig6"] {
		show(env.Fig6("v02"))
		show(env.Fig6("v03"))
	}
	if all || want["fig13"] {
		for _, array := range []string{"v02", "v03"} {
			for _, codec := range harness.Codecs {
				show(env.Fig13(array, codec))
			}
		}
	}
	if all || want["tab2"] {
		show(env.Table2())
	}
	if all || want["fig14"] {
		show(env.Fig14())
	}
	if all || want["ablations"] {
		show(env.AblationLinkSpeed("v02", 0.1, []float64{
			0.1 * netsim.Gbps, 0.5 * netsim.Gbps, 1 * netsim.Gbps,
			2 * netsim.Gbps, 10 * netsim.Gbps,
		}))
		show(env.AblationEncoding("v02"))
		show(env.AblationMultiIso("v03"))
	}
	if all || want["e2e"] {
		show(env.EndToEnd("v02", 0.1))
	}
	if all || want["slice"] {
		show(env.ExtensionSlice("v02"))
	}
	if all || want["lossy"] {
		show(env.AblationLossy([]float64{1.0, 0.1, 0.01}))
	}
	if all || want["faults"] {
		show(env.FaultsExperiment("v03"))
	}
	if all || want["overload"] {
		show(env.OverloadExperiment("v03"))
	}
	if all || want["crowd"] {
		show(env.CrowdExperiment("v03"))
	}
	if all || want["slo"] {
		show(env.SLOExperiment("v03"))
	}
	if all || want["shard"] {
		show(env.ShardExperiment("v03"))
	}
	if all || want["corrupt"] {
		show(env.CorruptExperiment("v03"))
	}
	if all || want["repeat"] {
		step := env.Steps()[0]
		for _, codec := range harness.Codecs {
			show(env.RepeatFetch("asteroid", codec, step, "v03"))
		}
	}

	if *jsonOut {
		doc := struct {
			Config      harness.Config `json:"config"`
			Experiments []*stats.Table `json:"experiments"`
		}{Config: cfg, Experiments: collected}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatal(err)
		}
	}

	// A final sanity line mirroring the headline claim.
	if all || want["tab2"] {
		summarize(env, progress)
	}
}

// summarize prints the headline speedups like the paper's abstract: NDP
// alone and NDP combined with compression, on the last contour value.
func summarize(env *harness.Env, w io.Writer) {
	step := env.Steps()[len(env.Steps())-1]
	iso := env.Cfg.ContourValues[len(env.Cfg.ContourValues)-1]
	base, err := env.BaselineLoad("asteroid", compress.None, step, "v03")
	if err != nil {
		log.Fatal(err)
	}
	ndp, err := env.NDPLoad("asteroid", compress.None, step, "v03", []float64{iso})
	if err != nil {
		log.Fatal(err)
	}
	combo, err := env.NDPLoad("asteroid", compress.LZ4, step, "v03", []float64{iso})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "headline (v03, iso %.1f, step %d): NDP alone %.2fx, LZ4+NDP %.2fx\n",
		iso, step,
		stats.Speedup(base.LoadTime, ndp.LoadTime),
		stats.Speedup(base.LoadTime, combo.LoadTime))
}

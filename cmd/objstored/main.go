// Command objstored runs the S3-style object store (the MinIO stand-in)
// over a local directory. An optional bandwidth/latency shape emulates
// serving clients across a slow link, as in the paper's testbed.
//
// Example:
//
//	objstored -root ./data -addr 127.0.0.1:9000 -gbps 1
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"time"

	"vizndp/internal/netsim"
	"vizndp/internal/objstore"
	"vizndp/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("objstored: ")

	var (
		root     = flag.String("root", "./objstore-data", "backing directory")
		addr     = flag.String("addr", "127.0.0.1:9000", "listen address")
		gbps     = flag.Float64("gbps", 0, "shape served traffic to this many Gb/s (0 = unshaped)")
		latency  = flag.Duration("latency", 0, "one-way link latency to charge")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /debug/trace, /debug/requests, /slo, and pprof on this address")
		bundles  = flag.String("debug-bundles", "", "write anomaly-triggered debug bundles (recent wide events, trace tree, metrics) into this directory")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	setLogLevel(*logLevel)

	if *bundles != "" {
		bw, err := telemetry.NewBundleWriter(*bundles, telemetry.BundleOptions{})
		if err != nil {
			log.Fatal(err)
		}
		telemetry.DefaultFlightRecorder().SetBundles(bw)
		fmt.Printf("debug bundles in %s\n", bw.Dir())
	}

	srv, err := objstore.NewServer(*root)
	if err != nil {
		log.Fatal(err)
	}
	var wrap func(net.Listener) net.Listener
	if *gbps > 0 || *latency > 0 {
		link := netsim.NewLink(*gbps*netsim.Gbps, *latency)
		wrap = link.Listener
	}
	bound, shutdown, err := srv.ListenAndServe(*addr, wrap)
	if err != nil {
		log.Fatal(err)
	}
	if *telAddr != "" {
		tbound, tshutdown, err := telemetry.ServeDebug(*telAddr, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer tshutdown()
		fmt.Printf("telemetry on http://%s/metrics\n", tbound)
	}
	fmt.Printf("serving %s on %s", *root, bound)
	if *gbps > 0 {
		fmt.Printf(" (shaped to %g Gb/s)", *gbps)
	}
	fmt.Println()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
	shutdown()
	time.Sleep(50 * time.Millisecond)
}

// setLogLevel applies a -log-level flag value to the telemetry loggers.
func setLogLevel(s string) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(s)); err != nil {
		log.Fatalf("bad -log-level %q: %v", s, err)
	}
	telemetry.SetDefaultLogLevel(lvl)
}

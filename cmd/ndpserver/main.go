// Command ndpserver runs the storage-side half of the split pipeline:
// an RPC service that reads dataset files (from a local directory or
// through an s3fs mount of an object store on the same node), runs the
// contour pre-filter near the data, and ships only the selected mesh
// points to clients.
//
// Examples:
//
//	ndpserver -addr 127.0.0.1:9100 -dir ./data
//	ndpserver -addr 127.0.0.1:9100 -store 127.0.0.1:9000 -bucket sim
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"vizndp/internal/core"
	"vizndp/internal/netsim"
	"vizndp/internal/objstore"
	"vizndp/internal/rpc"
	"vizndp/internal/s3fs"
	"vizndp/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ndpserver: ")

	var (
		addr     = flag.String("addr", "127.0.0.1:9100", "listen address")
		dir      = flag.String("dir", "", "serve dataset files from this directory")
		store    = flag.String("store", "", "object store address to mount instead of -dir")
		bucket   = flag.String("bucket", "sim", "object store bucket")
		cacheB   = flag.Int64("cache-bytes", 0, "decoded-array cache budget in bytes (0 = off)")
		coalesce = flag.Bool("coalesce", false, "batch concurrent fetches of the same array into shared multi-isovalue scans")
		payloadB = flag.Int64("payload-cache-bytes", 0, "encoded-payload cache budget in bytes; identical repeat fetches skip read and scan (0 = off)")
		shard    = flag.String("shard", "", "shard name stamped onto this server's request events (sharded deployments)")
		scrubInt = flag.Duration("scrub-interval", 0, "verify stored brick checksums in the background this often, quarantining corrupt objects (0 = off; requires -scrub-manifest)")
		scrubMan = flag.String("scrub-manifest", "", "comma-separated brick manifest paths for the background scrubber; status at /scrub")
		maxInFl  = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = unbounded)")
		queue    = flag.Int("queue", 0, "admission queue length beyond -max-inflight; full queue sheds with a retryable busy error")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "how long to let in-flight requests finish on SIGINT")
		gbps     = flag.Float64("gbps", 0, "shape client traffic to this many Gb/s (0 = unshaped)")
		latency  = flag.Duration("latency", 0, "one-way link latency to charge")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /debug/trace, /debug/requests, /slo, and pprof on this address")
		sloSpec  = flag.String("slo", "", `SLO objectives as "method=latency@latPct[/availPct]" entries, e.g. "ndp.fetch=50ms@99/99.9,*=250ms@99"; publishes telemetry.slo.* burn gauges and /slo`)
		bundles  = flag.String("debug-bundles", "", "write anomaly-triggered debug bundles (recent wide events, trace tree, metrics) into this directory")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	setLogLevel(*logLevel)

	rec := telemetry.DefaultFlightRecorder()
	if *sloSpec != "" {
		objs, err := telemetry.ParseSLOSpec(*sloSpec)
		if err != nil {
			log.Fatal(err)
		}
		rec.SetSLO(telemetry.NewSLOMonitor(telemetry.SLOOptions{}, objs...))
	}
	if *bundles != "" {
		bw, err := telemetry.NewBundleWriter(*bundles, telemetry.BundleOptions{})
		if err != nil {
			log.Fatal(err)
		}
		rec.SetBundles(bw)
		fmt.Printf("debug bundles in %s\n", bw.Dir())
	}

	if (*dir == "") == (*store == "") {
		log.Fatal("specify exactly one of -dir or -store")
	}
	var fsys fs.FS
	if *dir != "" {
		fsys = os.DirFS(*dir)
	} else {
		// Node-local mount: the object store runs on this same storage
		// node, so this client is unshaped.
		fsys = s3fs.New(objstore.NewClient(*store, nil), *bucket)
	}

	srvOpts := []core.ServerOption{core.WithCacheBytes(*cacheB),
		core.WithMaxInFlight(*maxInFl), core.WithQueue(*queue)}
	if *shard != "" {
		srvOpts = append(srvOpts, core.WithShardName(*shard))
	}
	if *coalesce {
		srvOpts = append(srvOpts, core.WithCoalesce(core.DefaultCoalesceWindow))
	}
	if *payloadB > 0 {
		srvOpts = append(srvOpts, core.WithPayloadCacheBytes(*payloadB))
	}
	var scrubber *core.Scrubber
	if *scrubMan != "" {
		var manifests []string
		for _, m := range strings.Split(*scrubMan, ",") {
			if m = strings.TrimSpace(m); m != "" {
				manifests = append(manifests, m)
			}
		}
		scrubber = core.NewScrubber(fsys, manifests...)
		srvOpts = append(srvOpts, core.WithScrubber(scrubber))
		telemetry.SetScrubStatus(func() any { return scrubber.Status() })
		// One synchronous pass before serving: known-bad bricks are
		// quarantined before the first fetch can trip over them.
		if rep, err := scrubber.RunOnce(context.Background()); err != nil {
			log.Fatalf("initial scrub pass: %v", err)
		} else if rep.Corrupt > 0 {
			log.Printf("initial scrub pass quarantined %d of %d objects", rep.Quarantined, rep.Scanned+rep.Corrupt+rep.Skipped)
		}
		if *scrubInt > 0 {
			scrubber.Start(*scrubInt)
			defer scrubber.Stop()
		}
	} else if *scrubInt > 0 {
		log.Fatal("-scrub-interval requires -scrub-manifest")
	}
	srv := core.NewServer(fsys, srvOpts...)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *gbps > 0 || *latency > 0 {
		link := netsim.NewLink(*gbps*netsim.Gbps, *latency)
		ln = link.Listener(ln)
	}
	if *telAddr != "" {
		tbound, tshutdown, err := telemetry.ServeDebug(*telAddr, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer tshutdown()
		fmt.Printf("telemetry on http://%s/metrics\n", tbound)
	}
	fmt.Printf("NDP pre-filter service on %s", bound)
	if *shard != "" {
		fmt.Printf(" (shard %s)", *shard)
	}
	if *gbps > 0 {
		fmt.Printf(" (shaped to %g Gb/s)", *gbps)
	}
	if *cacheB > 0 {
		fmt.Printf(" (array cache %d bytes)", *cacheB)
	}
	if *coalesce {
		fmt.Print(" (scan coalescing)")
	}
	if *payloadB > 0 {
		fmt.Printf(" (payload cache %d bytes)", *payloadB)
	}
	if scrubber != nil {
		if *scrubInt > 0 {
			fmt.Printf(" (scrubbing every %v)", *scrubInt)
		} else {
			fmt.Print(" (scrubbed once at startup)")
		}
	}
	fmt.Println()

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		// Graceful drain: stop accepting, shed new requests with the
		// retryable busy error, and give in-flight fetches -drain-timeout
		// to finish before cutting them off.
		log.Printf("draining (up to %v)", *drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, rpc.ErrShutdown) {
		log.Fatal(err)
	}
}

// setLogLevel applies a -log-level flag value to the telemetry loggers.
func setLogLevel(s string) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(s)); err != nil {
		log.Fatalf("bad -log-level %q: %v", s, err)
	}
	telemetry.SetDefaultLogLevel(lvl)
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vizndp/internal/analysis"
)

// testdata points at the analysis package's fixture tree; go list
// resolves relative directory patterns against the test's working
// directory (this package's source dir).
const testdata = "../../internal/analysis/testdata/src"

func runVizlint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestList(t *testing.T) {
	code, stdout, _ := runVizlint(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"lockhold", "blockinglock", "spanend", "closepath",
		"goroleak", "ctxflow", "nopanic", "floateq", "errwrap", "typecheck"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, stderr := runVizlint(t, "-run", "nosuch", ".")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Errorf("stderr does not name the unknown analyzer: %s", stderr)
	}
	// The error must teach, not just reject: every valid name appears so
	// the user can correct a typo without opening the source.
	for _, name := range analysis.AllNames() {
		if !strings.Contains(stderr, name) {
			t.Errorf("stderr valid-name list missing %q: %s", name, stderr)
		}
	}
}

// TestJSONOutput pins the NDJSON shape the problem matcher and any
// downstream tooling depend on: one self-contained object per line.
func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runVizlint(t, "-json", testdata+"/floateq/bad")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no NDJSON lines emitted")
	}
	for _, line := range lines {
		var f struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		if f.File == "" || f.Line == 0 || f.Col == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("NDJSON object has empty fields: %q", line)
		}
	}
}

// TestStrictIgnoresRejectsRun: staleness of a directive can only be
// judged when its analyzer actually ran, so -strict-ignores with a
// -run subset is a usage error.
func TestStrictIgnoresRejectsRun(t *testing.T) {
	code, _, stderr := runVizlint(t, "-strict-ignores", "-run", "floateq", ".")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "-strict-ignores") {
		t.Errorf("stderr does not explain the conflict: %s", stderr)
	}
}

// TestStrictIgnoresStale proves a directive that suppresses nothing is
// itself reported in strict mode.
func TestStrictIgnoresStale(t *testing.T) {
	code, stdout, _ := runVizlint(t, "-strict-ignores", testdata+"/directive/stale")
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "stale ignore directive") {
		t.Errorf("stale directive not reported:\n%s", stdout)
	}
	// Without strict mode the same package is clean.
	code, stdout, _ = runVizlint(t, testdata+"/directive/stale")
	if code != 0 {
		t.Fatalf("non-strict exit %d, want 0\n%s", code, stdout)
	}
}

func TestCleanPackage(t *testing.T) {
	code, stdout, _ := runVizlint(t, testdata+"/floateq/clean")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s", code, stdout)
	}
	if stdout != "" {
		t.Errorf("unexpected findings:\n%s", stdout)
	}
}

func TestFindingsExitNonZero(t *testing.T) {
	code, stdout, stderr := runVizlint(t, testdata+"/floateq/bad")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "bad.go:") || !strings.Contains(stdout, "floateq:") {
		t.Errorf("findings lack file:line and analyzer name:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("missing summary on stderr: %s", stderr)
	}
}

// TestSuppressedPackage proves a valid directive silences the finding
// through the CLI path.
func TestSuppressedPackage(t *testing.T) {
	code, stdout, _ := runVizlint(t, testdata+"/directive/clean")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s", code, stdout)
	}
}

// TestMalformedDirective proves a directive without a reason (or naming
// an unknown analyzer) is itself a finding and does not suppress.
func TestMalformedDirective(t *testing.T) {
	code, stdout, _ := runVizlint(t, testdata+"/directive/bad")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "vizlint: ignore directive") {
		t.Errorf("malformed directives not reported:\n%s", stdout)
	}
	if !strings.Contains(stdout, "floateq: direct ==") {
		t.Errorf("malformed directive must not suppress the finding:\n%s", stdout)
	}
}

func TestMultiFilePackage(t *testing.T) {
	code, stdout, _ := runVizlint(t, testdata+"/multifile/bad")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "a.go:") || !strings.Contains(stdout, "b.go:") {
		t.Errorf("findings should span both files of the package:\n%s", stdout)
	}
}

// TestTypecheckErrorPackage pins the contract from the issue: a package
// that fails to type-check is reported, not a crash.
func TestTypecheckErrorPackage(t *testing.T) {
	code, stdout, stderr := runVizlint(t, testdata+"/typecheck/broken")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "typecheck:") {
		t.Errorf("type errors not surfaced as findings:\n%s", stdout)
	}
}

// TestModuleClean keeps the merged tree lint-clean: the acceptance
// criterion the CI vizlint step enforces, runnable locally too.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite over the module")
	}
	// An import-path pattern keeps the test independent of the working
	// directory (this test runs from cmd/vizlint, where ./... would only
	// cover this subtree). -strict-ignores matches the CI invocation, so
	// a stale suppression anywhere in the tree fails here first.
	code, stdout, stderr := runVizlint(t, "-strict-ignores", "vizndp/...")
	if code != 0 {
		t.Fatalf("vizlint ./... exit %d\n%s%s", code, stdout, stderr)
	}
}

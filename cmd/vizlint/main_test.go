package main

import (
	"bytes"
	"strings"
	"testing"
)

// testdata points at the analysis package's fixture tree; go list
// resolves relative directory patterns against the test's working
// directory (this package's source dir).
const testdata = "../../internal/analysis/testdata/src"

func runVizlint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestList(t *testing.T) {
	code, stdout, _ := runVizlint(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"lockhold", "spanend", "nopanic", "floateq", "errwrap", "typecheck"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, stderr := runVizlint(t, "-run", "nosuch", ".")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Errorf("stderr does not name the unknown analyzer: %s", stderr)
	}
}

func TestCleanPackage(t *testing.T) {
	code, stdout, _ := runVizlint(t, testdata+"/floateq/clean")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s", code, stdout)
	}
	if stdout != "" {
		t.Errorf("unexpected findings:\n%s", stdout)
	}
}

func TestFindingsExitNonZero(t *testing.T) {
	code, stdout, stderr := runVizlint(t, testdata+"/floateq/bad")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "bad.go:") || !strings.Contains(stdout, "floateq:") {
		t.Errorf("findings lack file:line and analyzer name:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("missing summary on stderr: %s", stderr)
	}
}

// TestSuppressedPackage proves a valid directive silences the finding
// through the CLI path.
func TestSuppressedPackage(t *testing.T) {
	code, stdout, _ := runVizlint(t, testdata+"/directive/clean")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s", code, stdout)
	}
}

// TestMalformedDirective proves a directive without a reason (or naming
// an unknown analyzer) is itself a finding and does not suppress.
func TestMalformedDirective(t *testing.T) {
	code, stdout, _ := runVizlint(t, testdata+"/directive/bad")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "vizlint: ignore directive") {
		t.Errorf("malformed directives not reported:\n%s", stdout)
	}
	if !strings.Contains(stdout, "floateq: direct ==") {
		t.Errorf("malformed directive must not suppress the finding:\n%s", stdout)
	}
}

func TestMultiFilePackage(t *testing.T) {
	code, stdout, _ := runVizlint(t, testdata+"/multifile/bad")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "a.go:") || !strings.Contains(stdout, "b.go:") {
		t.Errorf("findings should span both files of the package:\n%s", stdout)
	}
}

// TestTypecheckErrorPackage pins the contract from the issue: a package
// that fails to type-check is reported, not a crash.
func TestTypecheckErrorPackage(t *testing.T) {
	code, stdout, stderr := runVizlint(t, testdata+"/typecheck/broken")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "typecheck:") {
		t.Errorf("type errors not surfaced as findings:\n%s", stdout)
	}
}

// TestModuleClean keeps the merged tree lint-clean: the acceptance
// criterion the CI vizlint step enforces, runnable locally too.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite over the module")
	}
	// An import-path pattern keeps the test independent of the working
	// directory (this test runs from cmd/vizlint, where ./... would only
	// cover this subtree).
	code, stdout, stderr := runVizlint(t, "vizndp/...")
	if code != 0 {
		t.Fatalf("vizlint ./... exit %d\n%s%s", code, stdout, stderr)
	}
}

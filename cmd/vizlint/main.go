// Command vizlint runs the repo's static-analysis suite: repo-specific
// invariants (lock/channel and span discipline, goroutine termination,
// context threading, Closer lifecycle, panic-free request serving,
// bit-exact float comparisons, %w error wrapping) machine-checked over
// every package in the module.
//
// Usage:
//
//	go run ./cmd/vizlint ./...
//	go run ./cmd/vizlint -run lockhold,spanend ./internal/rpc
//	go run ./cmd/vizlint -strict-ignores ./...
//	go run ./cmd/vizlint -json ./...
//	go run ./cmd/vizlint -list
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage
// or load errors. Findings print as file:line:col: analyzer: message,
// or with -json as one NDJSON object per line. Suppress a finding at
// its line with a mandatory-reason directive:
//
//	// vizlint:ignore <analyzer> <reason>
//
// -strict-ignores additionally reports directives that no longer
// suppress anything; it requires the full suite (no -run subset), since
// a directive for an analyzer that did not run cannot be judged stale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vizndp/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form: one object per line, fields
// matching the GitHub Actions problem matcher in
// .github/vizlint-problem-matcher.json.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vizlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzers to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as NDJSON (one object per line)")
	strictIgnores := fs.Bool("strict-ignores", false,
		"report ignore directives that no longer suppress anything (requires the full suite)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vizlint [-list] [-run analyzers] [-json] [-strict-ignores] [packages]")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "analyzers: %s\n", strings.Join(analysis.AllNames(), ", "))
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s %s\n", analysis.TypecheckName,
			"parse and type-check errors (always on)")
		return 0
	}
	if *strictIgnores && *runNames != "" {
		fmt.Fprintln(stderr, "vizlint: -strict-ignores requires the full analyzer suite; drop -run")
		return 2
	}
	analyzers, err := analysis.ByName(*runNames)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var findings []analysis.Finding
	if *strictIgnores {
		findings = analysis.AnalyzePackagesStrict(pkgs, analyzers)
	} else {
		findings = analysis.AnalyzePackages(pkgs, analyzers)
	}
	for _, f := range findings {
		if *jsonOut {
			enc, err := json.Marshal(jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			fmt.Fprintln(stdout, string(enc))
		} else {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vizlint: %d finding(s) in %d package(s)\n",
			len(findings), len(pkgs))
		return 1
	}
	return 0
}

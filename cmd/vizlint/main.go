// Command vizlint runs the repo's static-analysis suite: repo-specific
// invariants (lock and span discipline, panic-free request serving,
// bit-exact float comparisons, %w error wrapping) machine-checked over
// every package in the module.
//
// Usage:
//
//	go run ./cmd/vizlint ./...
//	go run ./cmd/vizlint -run lockhold,spanend ./internal/rpc
//	go run ./cmd/vizlint -list
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage
// or load errors. Findings print as file:line:col: analyzer: message.
// Suppress a finding at its line with a mandatory-reason directive:
//
//	// vizlint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vizndp/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vizlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzers to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vizlint [-list] [-run analyzers] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-10s %s\n", analysis.TypecheckName,
			"parse and type-check errors (always on)")
		return 0
	}
	analyzers, err := analysis.ByName(*runNames)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := analysis.AnalyzePackages(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vizlint: %d finding(s) in %d package(s)\n",
			len(findings), len(pkgs))
		return 1
	}
	return 0
}

// Command vizpipe runs a client-side visualization pipeline against
// stored datasets, in either of the paper's two configurations:
//
//   - baseline: read the full selected arrays from an object store
//     (through the s3fs layer) or a local directory, then contour;
//   - ndp: ask a remote ndpserver to pre-filter near the data, then
//     complete the contour locally from the sparse payload.
//
// It prints the measured data load time (the paper's metric), the bytes
// each array needed, and optionally renders the contours to a PNG.
//
// Examples:
//
//	vizpipe -mode baseline -store 127.0.0.1:9000 -bucket sim \
//	    -path asteroid/lz4/ts24006.vnd -arrays v02,v03 -iso 0.1 -render out.png
//	vizpipe -mode ndp -ndp 127.0.0.1:9100 \
//	    -path asteroid/lz4/ts24006.vnd -arrays v02,v03 -iso 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"image/color"
	"io"
	"io/fs"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"vizndp/internal/contour"
	"vizndp/internal/core"
	"vizndp/internal/objstore"
	"vizndp/internal/pipeline"
	"vizndp/internal/render"
	"vizndp/internal/rpc"
	"vizndp/internal/s3fs"
	"vizndp/internal/stats"
	"vizndp/internal/telemetry"
)

// layerColors cycles through display colors for multi-array renders
// (cyan water, yellow asteroid, as in the paper's Fig. 4).
var layerColors = []color.RGBA{
	{R: 40, G: 210, B: 210, A: 255},
	{R: 235, G: 210, B: 40, A: 255},
	{R: 220, G: 90, B: 90, A: 255},
	{R: 120, G: 220, B: 90, A: 255},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vizpipe: ")

	var (
		mode      = flag.String("mode", "baseline", "pipeline mode: baseline or ndp")
		dir       = flag.String("dir", "", "baseline: read files from this directory")
		store     = flag.String("store", "", "baseline: object store address")
		bucket    = flag.String("bucket", "sim", "object store bucket")
		ndpAddr   = flag.String("ndp", "", "ndp: address of the ndpserver")
		replicas  = flag.String("replicas", "", "ndp: comma-separated replica ndpserver addresses; calls route to the healthiest and fail over on busy/dead replicas")
		shardsCSV = flag.String("shards", "", "ndp: comma-separated shard ndpserver addresses for brick-sharded scatter-gather (needs -manifest; -path names the per-timestep brick directory)")
		manifest  = flag.String("manifest", "", "ndp: brick manifest key, fetched through the first -shards address")
		path      = flag.String("path", "", "dataset file path/key")
		arraysCSV = flag.String("arrays", "v02", "comma-separated data arrays to contour")
		isoCSV    = flag.String("iso", "0.1", "comma-separated contour values")
		filter    = flag.String("filter", "contour", "filter type: contour or threshold")
		loFlag    = flag.Float64("lo", 0, "threshold: lower bound")
		hiFlag    = flag.Float64("hi", 1, "threshold: upper bound")
		encName   = flag.String("encoding", "auto", "ndp payload encoding: auto, indexvalue, blockbitmap")
		renderOut = flag.String("render", "", "render the contours to this PNG file")
		objOut    = flag.String("obj", "", "export the first contour mesh to this OBJ file")
		sweep     = flag.Bool("sweep", false, "ndp: fetch every (array, isovalue) pair as its own concurrent request")
		parallel  = flag.Int("parallel", 0, "sweep: max in-flight requests (0 = library default)")
		retries   = flag.Int("retries", 1, "ndp: attempts per call; >1 uses the reconnecting fault-tolerant client")
		repeats   = flag.Int("repeats", 1, "measurement repetitions")
		sloSpec   = flag.String("slo", "", `client-side SLO objectives as "method=latency@latPct[/availPct]" entries, e.g. "ndp.fetch=50ms@99/99.9"; prints a burn-rate summary after the run`)
		verbose   = flag.Bool("v", false, "print the run's trace tree and metric deltas")
	)
	flag.Parse()

	if *sloSpec != "" {
		objs, err := telemetry.ParseSLOSpec(*sloSpec)
		if err != nil {
			log.Fatal(err)
		}
		// vizpipe observes from the client side, so the monitor scores the
		// client's wide events (which include degraded fallbacks and
		// retries) rather than a server's.
		mon := telemetry.NewSLOMonitor(telemetry.SLOOptions{Kind: telemetry.KindClient}, objs...)
		rec := telemetry.DefaultFlightRecorder()
		rec.SetSLO(mon)
		defer func() {
			fmt.Print("\n" + mon.Summary())
		}()
	}

	if *path == "" {
		log.Fatal("-path is required")
	}
	arrays := strings.Split(*arraysCSV, ",")
	isovalues, err := parseFloats(*isoCSV)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := core.ParseEncoding(*encName)
	if err != nil {
		log.Fatal(err)
	}

	if *sweep {
		if *mode != "ndp" || (*ndpAddr == "" && *replicas == "") {
			log.Fatal("-sweep needs -mode ndp and an -ndp or -replicas address")
		}
		if err := runSweep(*ndpAddr, *replicas, *path, arrays, isovalues, enc,
			*parallel, *retries, *repeats); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *filter == "threshold" {
		if err := runThreshold(*mode, *dir, *store, *bucket, *ndpAddr, *path,
			arrays, *loFlag, *hiFlag, enc, *repeats, *verbose); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *filter != "contour" {
		log.Fatalf("unknown filter %q (want contour or threshold)", *filter)
	}

	var source pipeline.Stage
	var ndpSrc *core.NDPSource
	var shardSrc *core.ShardedSource
	switch *mode {
	case "baseline":
		var fsys fs.FS
		switch {
		case *dir != "":
			fsys = os.DirFS(*dir)
		case *store != "":
			fsys = s3fs.New(objstore.NewClient(*store, nil), *bucket)
		default:
			log.Fatal("baseline mode needs -dir or -store")
		}
		source = &pipeline.FileSource{FS: fsys, Path: *path, Arrays: arrays}
	case "ndp":
		if *shardsCSV != "" {
			sc, err := dialSharded(*shardsCSV, *manifest, *retries)
			if err != nil {
				log.Fatal(err)
			}
			defer sc.Close()
			// -path names the per-timestep brick directory the manifest's
			// keys are relative to, e.g. asteroid/raw/ts00000/.
			prefix := *path
			if !strings.HasSuffix(prefix, "/") {
				prefix += "/"
			}
			shardSrc = &core.ShardedSource{
				Client:    sc,
				Prefix:    prefix,
				Arrays:    arrays,
				Isovalues: isovalues,
				Encoding:  enc,
			}
			source = shardSrc
			break
		}
		if *ndpAddr == "" && *replicas == "" {
			log.Fatal("ndp mode needs an -ndp, -replicas, or -shards address")
		}
		client, err := dialNDP(*ndpAddr, *replicas, *retries)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		ndpSrc = &core.NDPSource{
			Client:    client,
			Path:      *path,
			Arrays:    arrays,
			Isovalues: isovalues,
			Encoding:  enc,
		}
		source = ndpSrc
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	filters := make([]*pipeline.ContourFilter, len(arrays))
	for i, a := range arrays {
		filters[i] = &pipeline.ContourFilter{Array: a, Isovalues: isovalues}
	}
	p := pipeline.New(source, &pipeline.MultiContour{Filters: filters})

	var out any
	var obs *observer
	if *verbose {
		obs = newObserver()
	}
	for r := 0; r < *repeats; r++ {
		ctx, end := obs.beginRun()
		out, err = p.Run(ctx)
		end()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: data load time %s (total %s)\n",
			r+1,
			stats.FormatDuration(p.StageTime(pipeline.SourceStageName)),
			stats.FormatDuration(p.Total()))
	}
	obs.report(os.Stdout)

	results := out.(map[string]any)
	var layers []render.Layer
	for i, a := range arrays {
		switch m := results[a].(type) {
		case *contour.Mesh:
			fmt.Printf("array %s: %d triangles, %d vertices\n",
				a, m.NumTriangles(), m.NumVertices())
			layers = append(layers, render.Layer{
				Mesh:  m,
				Color: layerColors[i%len(layerColors)],
			})
		case *contour.LineSet:
			fmt.Printf("array %s: %d segments\n", a, m.NumSegments())
		}
		if ndpSrc != nil && ndpSrc.Stats[a] != nil {
			st := ndpSrc.Stats[a]
			mark := ""
			if st.Degraded {
				mark = " [degraded: raw transfer + local pre-filter]"
			}
			fmt.Printf("array %s: transferred %s of %s (%d points selected)%s\n",
				a, stats.FormatBytes(st.PayloadBytes), stats.FormatBytes(st.RawBytes),
				st.SelectedPoints, mark)
		}
		if shardSrc != nil && shardSrc.Stats[a] != nil {
			st := shardSrc.Stats[a]
			mark := ""
			if st.Degraded > 0 {
				mark = fmt.Sprintf(" [%d bricks degraded]", st.Degraded)
			}
			fmt.Printf("array %s: %d bricks, transferred %s of %s (%d points selected, %d ghost dups)%s\n",
				a, st.Bricks, stats.FormatBytes(st.PayloadBytes), stats.FormatBytes(st.RawBytes),
				st.SelectedPoints, st.DupPoints, mark)
		}
	}

	if *objOut != "" && len(layers) > 0 {
		f, err := os.Create(*objOut)
		if err != nil {
			log.Fatal(err)
		}
		mesh := layers[0].Mesh
		mesh.ComputeNormals()
		if err := mesh.WriteOBJ(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("exported", *objOut)
	}

	if *renderOut != "" && len(layers) > 0 {
		img, err := render.Meshes(layers, render.Options{
			Width: 800, Height: 800, AzimuthDeg: 35, ElevationDeg: 25,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := render.SavePNG(img, *renderOut); err != nil {
			log.Fatal(err)
		}
		fmt.Println("rendered", *renderOut)
	}
}

// observer captures the trace and metric state around measured runs for
// the -v report: one trace tree per run plus the metric deltas the runs
// induced. A nil observer is inert, so call sites need no verbose checks.
type observer struct {
	before telemetry.Snapshot
	traces []uint64
}

func newObserver() *observer {
	return &observer{before: telemetry.Default().Snapshot()}
}

// beginRun starts a root span for one measured run and returns the
// context to run under plus the func that ends the span.
func (o *observer) beginRun() (context.Context, func()) {
	if o == nil {
		return context.Background(), func() {}
	}
	ctx, span := telemetry.StartSpan(context.Background(), "vizpipe")
	o.traces = append(o.traces, span.Trace())
	return ctx, span.End
}

// report prints each run's trace tree and the metric deltas the runs
// induced, including spans and counters shipped back from the server.
func (o *observer) report(w io.Writer) {
	if o == nil {
		return
	}
	tr := telemetry.DefaultTracer()
	for i, trace := range o.traces {
		fmt.Fprintf(w, "\ntrace for run %d:\n", i+1)
		fmt.Fprint(w, telemetry.FormatTree(tr.TraceSpans(trace)))
	}
	fmt.Fprintf(w, "\nmetric deltas:\n")
	printDeltas(w, o.before, telemetry.Default().Snapshot())
}

// printDeltas writes the metrics that changed between two snapshots.
func printDeltas(w io.Writer, before, after telemetry.Snapshot) {
	var lines []string
	for name, v := range after.Counters {
		if d := v - before.Counters[name]; d != 0 {
			lines = append(lines, fmt.Sprintf("  %s +%d", name, d))
		}
	}
	for name, v := range after.Gauges {
		if v != before.Gauges[name] {
			lines = append(lines, fmt.Sprintf("  %s %d -> %d", name, before.Gauges[name], v))
		}
	}
	for name, h := range after.Histograms {
		if d := h.Count - before.Histograms[name].Count; d != 0 {
			lines = append(lines, fmt.Sprintf("  %s.count +%d (p50 %.4g, p95 %.4g)",
				name, d, h.P50, h.P95))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// runSweep fans one request per (array, isovalue) pair out over the
// multiplexed connection with FetchFilteredMulti and reports per-request
// and aggregate costs. Against a server with the array cache enabled,
// requests sharing an array coalesce into a single storage read.
func runSweep(ndpAddr, replicas, path string, arrays []string, isovalues []float64,
	enc core.Encoding, parallel, retries, repeats int) error {

	client, err := dialNDP(ndpAddr, replicas, retries)
	if err != nil {
		return err
	}
	defer client.Close()

	reqs := make([]core.MultiRequest, 0, len(arrays)*len(isovalues))
	for _, a := range arrays {
		for _, iso := range isovalues {
			reqs = append(reqs, core.MultiRequest{
				Path: path, Array: a, Isovalues: []float64{iso}, Encoding: enc,
			})
		}
	}
	for r := 0; r < repeats; r++ {
		start := time.Now()
		results := client.FetchFilteredMulti(reqs, parallel)
		wall := time.Since(start)

		var moved, raw int64
		for i, res := range results {
			req := reqs[i]
			if res.Err != nil {
				return fmt.Errorf("fetch %s/%s iso %g: %w",
					req.Path, req.Array, req.Isovalues[0], res.Err)
			}
			moved += res.Stats.PayloadBytes
			raw = res.Stats.RawBytes
			fmt.Printf("array %s iso %g: %d points, %s moved, read %s, total %s\n",
				req.Array, req.Isovalues[0], res.Stats.SelectedPoints,
				stats.FormatBytes(res.Stats.PayloadBytes),
				stats.FormatDuration(res.Stats.ReadTime),
				stats.FormatDuration(res.Stats.TotalTime))
		}
		fmt.Printf("sweep %d: %d fetches in %s, moved %s (one raw array is %s)\n",
			r+1, len(reqs), stats.FormatDuration(wall),
			stats.FormatBytes(moved), stats.FormatBytes(raw))
	}
	return nil
}

// runThreshold drives the split threshold filter in either mode.
func runThreshold(mode, dir, store, bucket, ndpAddr, path string,
	arrays []string, lo, hi float64, enc core.Encoding, repeats int, verbose bool) error {

	var obs *observer
	if verbose {
		obs = newObserver()
	}
	switch mode {
	case "baseline":
		var fsys fs.FS
		switch {
		case dir != "":
			fsys = os.DirFS(dir)
		case store != "":
			fsys = s3fs.New(objstore.NewClient(store, nil), bucket)
		default:
			return fmt.Errorf("baseline mode needs -dir or -store")
		}
		for _, array := range arrays {
			p := pipeline.New(
				&pipeline.FileSource{FS: fsys, Path: path, Arrays: []string{array}},
				&pipeline.ThresholdFilter{Array: array, Lo: lo, Hi: hi},
			)
			for r := 0; r < repeats; r++ {
				ctx, end := obs.beginRun()
				out, err := p.Run(ctx)
				end()
				if err != nil {
					return err
				}
				cs := out.(*contour.CellSet)
				fmt.Printf("array %s run %d: %d cells in [%g, %g], load %s\n",
					array, r+1, cs.Count(), lo, hi,
					stats.FormatDuration(p.StageTime(pipeline.SourceStageName)))
			}
		}
		obs.report(os.Stdout)
		return nil
	case "ndp":
		if ndpAddr == "" {
			return fmt.Errorf("ndp mode needs -ndp address")
		}
		client, err := core.Dial(ndpAddr, nil)
		if err != nil {
			return err
		}
		defer client.Close()
		desc, err := client.Describe(path)
		if err != nil {
			return err
		}
		for _, array := range arrays {
			for r := 0; r < repeats; r++ {
				ctx, end := obs.beginRun()
				payload, st, err := client.FetchRangeContext(ctx, path, array, lo, hi, enc)
				end()
				if err != nil {
					return err
				}
				cs, err := core.ThresholdFromPayload(desc.Grid, payload, lo, hi)
				if err != nil {
					return err
				}
				fmt.Printf("array %s run %d: %d cells in [%g, %g], load %s, moved %s of %s\n",
					array, r+1, cs.Count(), lo, hi,
					stats.FormatDuration(st.TotalTime),
					stats.FormatBytes(st.PayloadBytes), stats.FormatBytes(st.RawBytes))
			}
		}
		obs.report(os.Stdout)
		return nil
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// dialNDP picks the client flavor by the flags: a replica pool (healthiest
// routing + transparent failover) when -replicas lists addresses, else the
// plain fail-fast client at -retries 1 or the reconnecting fault-tolerant
// client (with graceful degradation to raw transfers) above.
func dialNDP(addr, replicas string, retries int) (*core.Client, error) {
	if replicas != "" {
		addrs := strings.Split(replicas, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		opts := core.PoolOptions{}
		if retries > 1 {
			opts.Reconnect.MaxAttempts = retries
		}
		client, _ := core.DialPool(addrs, nil, opts)
		return client, nil
	}
	if retries > 1 {
		return core.DialFaultTolerant(addr, nil, rpc.ReconnectOptions{
			MaxAttempts: retries,
		}), nil
	}
	return core.Dial(addr, nil)
}

// dialSharded fetches the brick manifest through the first shard address
// and opens the scatter-gather client: per-shard pooled clients whose
// replica lists are the sibling shards, so a dead shard's bricks fail
// over (every shard mounts the same store).
func dialSharded(shardsCSV, manifestKey string, retries int) (*core.ShardedClient, error) {
	if manifestKey == "" {
		return nil, fmt.Errorf("-shards needs -manifest <key>")
	}
	addrs := strings.Split(shardsCSV, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	first, err := core.Dial(addrs[0], nil)
	if err != nil {
		return nil, err
	}
	man, err := first.FetchManifest(manifestKey)
	first.Close()
	if err != nil {
		return nil, fmt.Errorf("fetching manifest %s: %w", manifestKey, err)
	}
	opts := core.PoolOptions{}
	if retries > 1 {
		opts.Reconnect.MaxAttempts = retries
	}
	return core.DialSharded(man, addrs, nil, opts)
}

func parseFloats(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad isovalue %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

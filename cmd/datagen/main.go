// Command datagen generates the synthetic datasets (the xRage deep-water
// asteroid impact run and the Nyx cosmology snapshot) and writes them as
// dataset files, either to a local directory or into a running object
// store, in any of the three storage codecs.
//
// Examples:
//
//	datagen -dataset asteroid -n 96 -steps 9 -codec all -out ./data
//	datagen -dataset nyx -n 96 -codec lz4 -store 127.0.0.1:9000 -bucket sim
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vizndp/internal/compress"
	"vizndp/internal/grid"
	"vizndp/internal/objstore"
	"vizndp/internal/sim"
	"vizndp/internal/vtkio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		dataset = flag.String("dataset", "asteroid", "dataset to generate: asteroid or nyx")
		n       = flag.Int("n", 96, "grid edge length (points per axis)")
		steps   = flag.Int("steps", 9, "number of asteroid timesteps (ignored for nyx)")
		codec   = flag.String("codec", "all", "storage codec: raw, gzip, lz4, or all")
		seed    = flag.Uint("seed", 7, "generator seed")
		out     = flag.String("out", "", "output directory (local files)")
		store   = flag.String("store", "", "object store address (host:port) instead of -out")
		bucket  = flag.String("bucket", "sim", "object store bucket")
	)
	flag.Parse()

	codecs, err := parseCodecs(*codec)
	if err != nil {
		log.Fatal(err)
	}
	if (*out == "") == (*store == "") {
		log.Fatal("specify exactly one of -out or -store")
	}

	write := func(key string, ds *grid.Dataset, kind compress.Kind) error {
		if *store != "" {
			var buf bytes.Buffer
			if err := vtkio.Write(&buf, ds, vtkio.WriteOptions{Codec: kind}); err != nil {
				return err
			}
			client := objstore.NewClient(*store, nil)
			return client.Put(*bucket, key, buf.Bytes())
		}
		path := filepath.Join(*out, filepath.FromSlash(key))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		return vtkio.WriteFile(path, ds, vtkio.WriteOptions{Codec: kind})
	}

	switch *dataset {
	case "asteroid":
		cfg := sim.AsteroidConfig{N: *n, Seed: uint32(*seed)}
		for _, step := range cfg.Timesteps(*steps) {
			ds, err := cfg.Generate(step)
			if err != nil {
				log.Fatal(err)
			}
			for _, kind := range codecs {
				key := fmt.Sprintf("asteroid/%s/ts%05d.vnd", kind, step)
				if err := write(key, ds, kind); err != nil {
					log.Fatal(err)
				}
				fmt.Println("wrote", key)
			}
		}
	case "nyx":
		cfg := sim.NyxConfig{N: *n, Seed: uint32(*seed)}
		ds, err := cfg.Generate()
		if err != nil {
			log.Fatal(err)
		}
		for _, kind := range codecs {
			key := fmt.Sprintf("nyx/%s/ts00000.vnd", kind)
			if err := write(key, ds, kind); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", key)
		}
	default:
		log.Fatalf("unknown dataset %q (want asteroid or nyx)", *dataset)
	}
}

func parseCodecs(s string) ([]compress.Kind, error) {
	if s == "all" {
		return []compress.Kind{compress.None, compress.Gzip, compress.LZ4}, nil
	}
	k, err := compress.ParseKind(s)
	if err != nil {
		return nil, err
	}
	return []compress.Kind{k}, nil
}

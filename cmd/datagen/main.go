// Command datagen generates the synthetic datasets (the xRage deep-water
// asteroid impact run and the Nyx cosmology snapshot) and writes them as
// dataset files, either to a local directory or into a running object
// store, in any of the three storage codecs.
//
// Examples:
//
//	datagen -dataset asteroid -n 96 -steps 9 -codec all -out ./data
//	datagen -dataset nyx -n 96 -codec lz4 -store 127.0.0.1:9000 -bucket sim
//
// With -bricks NxMxK each timestep is additionally partitioned into
// bricks with a ghost layer and written as per-brick objects plus a
// manifest, ready for a sharded scatter-gather deployment:
//
//	datagen -dataset asteroid -n 96 -codec raw -bricks 3x1x1 -shards 3 -out ./data
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vizndp/internal/compress"
	"vizndp/internal/grid"
	"vizndp/internal/objstore"
	"vizndp/internal/sim"
	"vizndp/internal/vtkio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		dataset = flag.String("dataset", "asteroid", "dataset to generate: asteroid or nyx")
		n       = flag.Int("n", 96, "grid edge length (points per axis)")
		steps   = flag.Int("steps", 9, "number of asteroid timesteps (ignored for nyx)")
		codec   = flag.String("codec", "all", "storage codec: raw, gzip, lz4, or all")
		seed    = flag.Uint("seed", 7, "generator seed")
		out     = flag.String("out", "", "output directory (local files)")
		store   = flag.String("store", "", "object store address (host:port) instead of -out")
		bucket  = flag.String("bucket", "sim", "object store bucket")
		cksum   = flag.Bool("checksum", true, "embed per-page CRC32C checksums in every written object; readers verify on decode and the ndpserver scrubber audits them")
		bricks  = flag.String("bricks", "", `also write per-brick objects + manifest, bricked "NxMxK" (e.g. 3x1x1)`)
		ghost   = flag.Int("ghost", 1, "ghost cell layers per brick (with -bricks)")
		shards  = flag.Int("shards", 0, "assign bricks to this many shards round-robin in the manifest (0 = hash-routed)")
	)
	flag.Parse()

	codecs, err := parseCodecs(*codec)
	if err != nil {
		log.Fatal(err)
	}
	if (*out == "") == (*store == "") {
		log.Fatal("specify exactly one of -out or -store")
	}
	var spec grid.BrickSpec
	if *bricks != "" {
		spec, err = parseBricks(*bricks, *ghost)
		if err != nil {
			log.Fatal(err)
		}
	}

	writeRaw := func(key string, data []byte) error {
		if *store != "" {
			client := objstore.NewClient(*store, nil)
			return client.Put(*bucket, key, data)
		}
		path := filepath.Join(*out, filepath.FromSlash(key))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		return os.WriteFile(path, data, 0o644)
	}

	write := func(key string, ds *grid.Dataset, kind compress.Kind) error {
		opts := vtkio.WriteOptions{Codec: kind, Checksum: *cksum}
		if *store != "" {
			var buf bytes.Buffer
			if err := vtkio.Write(&buf, ds, opts); err != nil {
				return err
			}
			client := objstore.NewClient(*store, nil)
			return client.Put(*bucket, key, buf.Bytes())
		}
		path := filepath.Join(*out, filepath.FromSlash(key))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		return vtkio.WriteFile(path, ds, opts)
	}

	// writeBricked partitions one timestep into per-brick objects under
	// <dataset>/<codec>/ts%05d/ and writes the manifest next to the
	// timestep directories (the geometry is identical across steps, so
	// one manifest per dataset/codec suffices).
	wroteManifest := map[compress.Kind]bool{}
	writeBricked := func(name string, step int, ds *grid.Dataset, kind compress.Kind) error {
		man, err := vtkio.BuildManifest(ds.Grid, spec, ds.FieldNames(), *shards)
		if err != nil {
			return err
		}
		if !wroteManifest[kind] {
			data, err := vtkio.EncodeManifest(man)
			if err != nil {
				return err
			}
			key := fmt.Sprintf("%s/%s/manifest.json", name, kind)
			if err := writeRaw(key, data); err != nil {
				return err
			}
			fmt.Println("wrote", key)
			wroteManifest[kind] = true
		}
		gridBricks, err := man.GridBricks()
		if err != nil {
			return err
		}
		for _, b := range gridBricks {
			sub, err := grid.ExtractBrick(ds, b)
			if err != nil {
				return err
			}
			key := fmt.Sprintf("%s/%s/ts%05d/%s", name, kind, step, vtkio.BrickKey(b.ID))
			if err := write(key, sub, kind); err != nil {
				return err
			}
			fmt.Println("wrote", key)
		}
		return nil
	}

	emit := func(name string, step int, ds *grid.Dataset) {
		for _, kind := range codecs {
			key := fmt.Sprintf("%s/%s/ts%05d.vnd", name, kind, step)
			if err := write(key, ds, kind); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", key)
			if *bricks != "" {
				if err := writeBricked(name, step, ds, kind); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	switch *dataset {
	case "asteroid":
		cfg := sim.AsteroidConfig{N: *n, Seed: uint32(*seed)}
		for _, step := range cfg.Timesteps(*steps) {
			ds, err := cfg.Generate(step)
			if err != nil {
				log.Fatal(err)
			}
			emit("asteroid", step, ds)
		}
	case "nyx":
		cfg := sim.NyxConfig{N: *n, Seed: uint32(*seed)}
		ds, err := cfg.Generate()
		if err != nil {
			log.Fatal(err)
		}
		emit("nyx", 0, ds)
	default:
		log.Fatalf("unknown dataset %q (want asteroid or nyx)", *dataset)
	}
}

// parseBricks parses "NxMxK" into a brick spec.
func parseBricks(s string, ghost int) (grid.BrickSpec, error) {
	var nx, ny, nz int
	if _, err := fmt.Sscanf(s, "%dx%dx%d", &nx, &ny, &nz); err != nil {
		return grid.BrickSpec{}, fmt.Errorf(`bad -bricks %q (want "NxMxK", e.g. 3x1x1)`, s)
	}
	return grid.BrickSpec{NX: nx, NY: ny, NZ: nz, Ghost: ghost}, nil
}

func parseCodecs(s string) ([]compress.Kind, error) {
	if s == "all" {
		return []compress.Kind{compress.None, compress.Gzip, compress.LZ4}, nil
	}
	k, err := compress.ParseKind(s)
	if err != nil {
		return nil, err
	}
	return []compress.Kind{k}, nil
}

package vizndp

// Integration test of the command-line deployment: the object store,
// NDP server, data generator, and client pipeline running as separate
// processes, exactly as README's "distributed setup" section describes.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTools compiles the binaries once into a temp dir.
func buildTools(t *testing.T, dir string) map[string]string {
	t.Helper()
	tools := map[string]string{}
	for _, name := range []string{"objstored", "ndpserver", "datagen", "vizpipe"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		tools[name] = out
	}
	return tools
}

// freePort reserves a TCP port and releases it for the child process.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitTCP waits for something to accept connections at addr.
func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("nothing listening at %s", addr)
}

func startDaemon(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			t.Logf("%s output:\n%s", bin, out.String())
		}
	})
}

func TestCommandLineDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process integration test in -short mode")
	}
	dir := t.TempDir()
	tools := buildTools(t, dir)

	// Storage node: object store.
	storeAddr := freePort(t)
	storeDir := filepath.Join(dir, "store")
	startDaemon(t, tools["objstored"], "-root", storeDir, "-addr", storeAddr)
	waitTCP(t, storeAddr)

	// Populate one small timestep in raw and lz4.
	for _, codec := range []string{"raw", "lz4"} {
		cmd := exec.Command(tools["datagen"],
			"-dataset", "asteroid", "-n", "32", "-steps", "2",
			"-codec", codec, "-store", storeAddr, "-bucket", "sim", "-seed", "7")
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("datagen %s: %v\n%s", codec, err, msg)
		}
	}

	// Storage node: NDP pre-filter service mounting the store.
	ndpAddr := freePort(t)
	startDaemon(t, tools["ndpserver"],
		"-addr", ndpAddr, "-store", storeAddr, "-bucket", "sim")
	waitTCP(t, ndpAddr)

	key := "asteroid/lz4/ts00000.vnd"
	renderPath := filepath.Join(dir, "out.png")
	objPath := filepath.Join(dir, "out.obj")

	// Client: baseline pipeline.
	baseline := exec.Command(tools["vizpipe"],
		"-mode", "baseline", "-store", storeAddr, "-bucket", "sim",
		"-path", key, "-arrays", "v02,v03", "-iso", "0.1")
	baseOut, err := baseline.CombinedOutput()
	if err != nil {
		t.Fatalf("baseline vizpipe: %v\n%s", err, baseOut)
	}
	if !strings.Contains(string(baseOut), "triangles") {
		t.Fatalf("baseline output missing triangles:\n%s", baseOut)
	}

	// Client: NDP pipeline with render + OBJ export.
	ndp := exec.Command(tools["vizpipe"],
		"-mode", "ndp", "-ndp", ndpAddr,
		"-path", key, "-arrays", "v02,v03", "-iso", "0.1",
		"-render", renderPath, "-obj", objPath)
	ndpOut, err := ndp.CombinedOutput()
	if err != nil {
		t.Fatalf("ndp vizpipe: %v\n%s", err, ndpOut)
	}
	sOut := string(ndpOut)
	if !strings.Contains(sOut, "transferred") {
		t.Fatalf("ndp output missing transfer stats:\n%s", sOut)
	}

	// Same triangle counts through both paths.
	for _, array := range []string{"v02", "v03"} {
		bLine := triangleLine(t, string(baseOut), array)
		nLine := triangleLine(t, sOut, array)
		if bLine != nLine {
			t.Errorf("array %s: baseline %q != ndp %q", array, bLine, nLine)
		}
	}

	for _, p := range []string{renderPath, objPath} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Errorf("output %s missing: %v", p, err)
		}
	}

	// Local-directory flow: datagen -out plus vizpipe -dir, no servers.
	localDir := filepath.Join(dir, "local")
	gen := exec.Command(tools["datagen"],
		"-dataset", "nyx", "-n", "24", "-codec", "gzip", "-out", localDir)
	if msg, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("datagen -out: %v\n%s", err, msg)
	}
	local := exec.Command(tools["vizpipe"],
		"-mode", "baseline", "-dir", localDir,
		"-path", "nyx/gzip/ts00000.vnd", "-arrays", "baryon_density", "-iso", "81.66")
	if msg, err := local.CombinedOutput(); err != nil {
		t.Fatalf("local vizpipe: %v\n%s", err, msg)
	} else if !strings.Contains(string(msg), "triangles") {
		t.Fatalf("local vizpipe output:\n%s", msg)
	}

	// Client: split threshold filter over NDP.
	th := exec.Command(tools["vizpipe"],
		"-mode", "ndp", "-ndp", ndpAddr, "-filter", "threshold",
		"-path", key, "-arrays", "v02", "-lo", "0.2", "-hi", "0.8")
	thOut, err := th.CombinedOutput()
	if err != nil {
		t.Fatalf("threshold vizpipe: %v\n%s", err, thOut)
	}
	if !strings.Contains(string(thOut), "cells in [0.2, 0.8]") {
		t.Fatalf("threshold output unexpected:\n%s", thOut)
	}
}

// triangleLine extracts the "array X: N triangles..." line for an array.
func triangleLine(t *testing.T, out, array string) string {
	t.Helper()
	prefix := fmt.Sprintf("array %s: ", array)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) && strings.Contains(line, "triangles") {
			return line
		}
	}
	t.Fatalf("no triangle line for %s in:\n%s", array, out)
	return ""
}

package vizndp

import (
	"context"
	"image/color"
	"math"
	"net"
	"os"
	"path/filepath"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way the quickstart
// example does: generate, store, serve, fetch with NDP, contour, render.
func TestFacadeEndToEnd(t *testing.T) {
	ds, err := GenerateAsteroid(AsteroidConfig{N: 32, Seed: 1}, 24006)
	if err != nil {
		t.Fatal(err)
	}

	// Local split contour equals a plain contour.
	field := ds.Field("v02")
	full, err := MarchingTetrahedra(ds.Grid, field.Values, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	mesh, st, err := SplitContour(ds.Grid, field, []float64{0.1}, EncAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !mesh.Equal(full) {
		t.Fatal("split contour differs from full contour")
	}
	if st.PayloadBytes >= st.RawBytes {
		t.Errorf("payload %d >= raw %d", st.PayloadBytes, st.RawBytes)
	}

	// Store a dataset file and serve it over NDP.
	dir := t.TempDir()
	if err := WriteDatasetFile(filepath.Join(dir, "ts0.vnd"), ds,
		WriteOptions{Codec: LZ4}); err != nil {
		t.Fatal(err)
	}
	srv := NewNDPServer(os.DirFS(dir))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	client, err := DialNDP(ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	src := &NDPSource{
		Client:    client,
		Path:      "ts0.vnd",
		Arrays:    []string{"v02"},
		Isovalues: []float64{0.1},
	}
	p := NewPipeline(src, &ContourFilter{Array: "v02", Isovalues: []float64{0.1}})
	out, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*Mesh)
	if !got.Equal(full) {
		t.Fatal("NDP pipeline contour differs from local contour")
	}
	if p.StageTime(SourceStageName) <= 0 {
		t.Error("no data load time recorded")
	}

	// Render the result.
	img, err := RenderMesh(got, color.RGBA{R: 40, G: 210, B: 210, A: 255},
		RenderOptions{Width: 64, Height: 64})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "contour.png")
	if err := SavePNG(img, path); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Errorf("png not written: %v", err)
	}
}

func TestFacade2D(t *testing.T) {
	g := NewGrid(24, 24, 1)
	ds := NewDataset(g)
	f := NewField("d", g.NumPoints())
	for j := 0; j < 24; j++ {
		for i := 0; i < 24; i++ {
			dx, dy := float64(i)-11.5, float64(j)-11.5
			f.Values[g.PointIndex(i, j, 0)] = float32(math.Sqrt(dx*dx + dy*dy))
		}
	}
	ds.MustAddField(f)
	ls, err := MarchingSquares(g, f.Values, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if ls.NumSegments() == 0 {
		t.Fatal("no segments")
	}
	img, err := RenderLines(ls, color.RGBA{G: 255, A: 255}, RenderOptions{Width: 48, Height: 48})
	if err != nil || img == nil {
		t.Fatalf("render lines: %v", err)
	}
}

func TestFacadeObjectStore(t *testing.T) {
	store, err := NewObjectStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	addr, shutdown, err := store.ListenAndServe("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	client := NewObjectClient(addr, nil)
	if err := client.Put("b", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	fsys := NewBucketFS(client, "b")
	f, err := fsys.Open("k")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil || fi.Size() != 7 {
		t.Errorf("stat = %v, %v", fi, err)
	}
}

func TestFacadeLinks(t *testing.T) {
	l := GigabitEthernet()
	if l.BitsPerSec() != 1e9 {
		t.Errorf("BitsPerSec = %v", l.BitsPerSec())
	}
	l2 := NewLink(2e9, 0)
	if l2.TransferTime(250_000_000).Seconds() != 1 {
		t.Errorf("TransferTime wrong")
	}
}

func TestFacadeNyx(t *testing.T) {
	ds, err := GenerateNyx(NyxConfig{N: 24, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	bd := ds.Field("baryon_density")
	if bd == nil {
		t.Fatal("missing baryon_density")
	}
	_, hi := bd.Range()
	if float64(hi) < NyxHaloThreshold {
		t.Errorf("max density %v below threshold", hi)
	}
}

func TestFacadeRectilinear(t *testing.T) {
	coords := []float64{0, 0.5, 1.5, 3}
	g := NewRectilinear(coords, coords, coords)
	vals := make([]float32, g.NumPoints())
	c := g.PointPosition(2, 2, 2)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				vals[g.PointIndex(i, j, k)] = float32(g.PointPosition(i, j, k).Sub(c).Norm())
			}
		}
	}
	m, err := MarchingTetrahedraGeom(g, vals, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTriangles() == 0 {
		t.Error("no triangles on rectilinear grid")
	}
}

func TestFacadeThreshold(t *testing.T) {
	ds, err := GenerateAsteroid(AsteroidConfig{N: 24, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ThresholdCells(ds.Grid, ds.Field("v02").Values, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Count() == 0 {
		t.Error("threshold found no interface cells")
	}
	// Split threshold equals full threshold.
	pre := &RangePreFilter{Lo: 0.2, Hi: 0.8}
	payload, _, err := pre.Run(ds.Grid, ds.Field("v02"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ThresholdFromPayload(ds.Grid, payload, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cs) {
		t.Error("split threshold differs from full")
	}
}

func TestFormatBytesFacade(t *testing.T) {
	if FormatBytes(2048) != "2.0KiB" {
		t.Error("FormatBytes broken")
	}
}

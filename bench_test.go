package vizndp

// One benchmark per table and figure in the paper's evaluation, plus the
// ablations listed in DESIGN.md. Each benchmark drives the experiment
// harness end to end (object store, shaped link, NDP server) at the
// quick configuration; `cmd/benchviz` runs the same experiments at full
// scale and prints the complete tables.
//
// Run them all with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"vizndp/internal/compress"
	"vizndp/internal/harness"
	"vizndp/internal/netsim"
	"vizndp/internal/stats"
)

var (
	benchOnce sync.Once
	benchEnv  *harness.Env
	benchDir  string
	benchErr  error
)

// env lazily builds one shared harness environment for all benchmarks.
func env(b *testing.B) *harness.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "vizndp-bench-*")
		if benchErr != nil {
			return
		}
		benchEnv, benchErr = harness.NewEnv(harness.QuickConfig(benchDir))
	})
	if benchErr != nil {
		b.Fatalf("building bench env: %v", benchErr)
	}
	return benchEnv
}

func TestMain(m *testing.M) {
	code := m.Run()
	if benchEnv != nil {
		benchEnv.Close()
	}
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
	os.Exit(code)
}

// reportTable prints the experiment's table once, under -v or bench
// output, so a bench run doubles as a results dump.
func reportTable(b *testing.B, t *stats.Table) {
	b.Helper()
	if testing.Verbose() {
		fmt.Println(t.String())
	}
}

// BenchmarkFig1Reduction regenerates Fig. 1: data reduction ratio ranges
// for GZip, LZ4, and contour-based selection.
func BenchmarkFig1Reduction(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		t, err := e.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFig5Compression regenerates Fig. 5: stored sizes plus remote
// and local load times for v02 and v03 under RAW/GZip/LZ4.
func BenchmarkFig5Compression(b *testing.B) {
	e := env(b)
	for _, array := range []string{"v02", "v03"} {
		array := array
		b.Run(array, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := e.Fig5(array)
				if err != nil {
					b.Fatal(err)
				}
				reportTable(b, t)
			}
		})
	}
}

// BenchmarkFig6Selectivity regenerates Fig. 6: contour selection rates
// in permillage per timestep and contour value.
func BenchmarkFig6Selectivity(b *testing.B) {
	e := env(b)
	for _, array := range []string{"v02", "v03"} {
		array := array
		b.Run(array, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := e.Fig6(array)
				if err != nil {
					b.Fatal(err)
				}
				reportTable(b, t)
			}
		})
	}
}

// BenchmarkFig13NDP regenerates Fig. 13: baseline vs NDP load times for
// each codec and array across timesteps.
func BenchmarkFig13NDP(b *testing.B) {
	e := env(b)
	for _, array := range []string{"v02", "v03"} {
		for _, codec := range harness.Codecs {
			name := fmt.Sprintf("%s-%s", array, codec)
			array, codec := array, codec
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					t, err := e.Fig13(array, codec)
					if err != nil {
						b.Fatal(err)
					}
					reportTable(b, t)
				}
			})
		}
	}
}

// BenchmarkTable2Speedups regenerates Table II: speedups of every
// combination of NDP and compression over the RAW baseline.
func BenchmarkTable2Speedups(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		t, err := e.Table2()
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkFig14Nyx regenerates Fig. 14: Nyx baryon-density load times,
// baseline vs NDP, per codec.
func BenchmarkFig14Nyx(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		t, err := e.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkAblationLinkSpeed sweeps the inter-node link capacity and
// projects NDP's speedup (extension experiment).
func BenchmarkAblationLinkSpeed(b *testing.B) {
	e := env(b)
	links := []float64{
		0.1 * netsim.Gbps, 0.5 * netsim.Gbps, 1 * netsim.Gbps,
		2 * netsim.Gbps, 10 * netsim.Gbps,
	}
	for i := 0; i < b.N; i++ {
		t, err := e.AblationLinkSpeed("v02", 0.1, links)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkAblationEncoding compares the sparse payload encodings
// (DESIGN.md design-choice ablation).
func BenchmarkAblationEncoding(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		t, err := e.AblationEncoding("v02")
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkAblationMultiValue compares one multi-isovalue pre-filter pass
// against per-value passes (DESIGN.md design-choice ablation).
func BenchmarkAblationMultiValue(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		t, err := e.AblationMultiIso("v03")
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkExtensionEndToEnd measures full pipeline runtimes (load +
// contour + render), baseline vs NDP — the paper's stated future work.
func BenchmarkExtensionEndToEnd(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		t, err := e.EndToEnd("v02", 0.1)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkExtensionLossy measures error-bounded lossy storage on the
// Nyx dataset — the paper's compression future-work item.
func BenchmarkExtensionLossy(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		t, err := e.AblationLossy([]float64{0.1, 0.01})
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkExtensionSlice measures the split slice filter against full
// array loads — the third offloaded filter type.
func BenchmarkExtensionSlice(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		t, err := e.ExtensionSlice("v02")
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, t)
	}
}

// BenchmarkBaselineVsNDPLoad is a focused microbenchmark of the two data
// paths on one timestep, reporting moved network bytes per op.
func BenchmarkBaselineVsNDPLoad(b *testing.B) {
	e := env(b)
	step := e.Steps()[0]
	b.Run("baseline-raw", func(b *testing.B) {
		var bytesMoved int64
		for i := 0; i < b.N; i++ {
			m, err := e.BaselineLoad("asteroid", compress.None, step, "v02")
			if err != nil {
				b.Fatal(err)
			}
			bytesMoved = m.NetworkBytes
		}
		b.ReportMetric(float64(bytesMoved), "netbytes/op")
	})
	b.Run("ndp-raw", func(b *testing.B) {
		var bytesMoved int64
		for i := 0; i < b.N; i++ {
			m, err := e.NDPLoad("asteroid", compress.None, step, "v02", []float64{0.1})
			if err != nil {
				b.Fatal(err)
			}
			bytesMoved = m.NetworkBytes
		}
		b.ReportMetric(float64(bytesMoved), "netbytes/op")
	})
}
